/**
 * @file
 * Unit tests for the Context-Table: dynamic loop detection, nesting,
 * termination clearing, call-depth tracking (paper Sec. V-C1, Fig. 5).
 */

#include <gtest/gtest.h>

#include "core/context_table.hh"

namespace {

using namespace pbs::core;

ContextTable
makeTable()
{
    return ContextTable(PbsConfig{});
}

TEST(ContextTableTest, NoLoopInitially)
{
    auto t = makeTable();
    bool ok = false;
    ContextKey key = t.currentContext(ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(key.loopSlot, -1);
    EXPECT_EQ(key.funcPc, 0u);
}

TEST(ContextTableTest, BackwardTakenBranchAllocatesLoop)
{
    auto t = makeTable();
    t.noteBranch(/*pc*/ 100, /*target*/ 50, /*taken*/ true);
    bool ok = false;
    ContextKey key = t.currentContext(ok);
    EXPECT_TRUE(ok);
    EXPECT_GE(key.loopSlot, 0);
    EXPECT_EQ(key.loopPc, 50u);
}

TEST(ContextTableTest, ForwardBranchesIgnored)
{
    auto t = makeTable();
    t.noteBranch(50, 100, true);
    bool ok = false;
    EXPECT_EQ(t.currentContext(ok).loopSlot, -1);
}

TEST(ContextTableTest, NotTakenBackwardBranchAtExtentTerminates)
{
    auto t = makeTable();
    unsigned cleared = 0;
    t.setClearHook([&](int, uint64_t) { cleared++; });
    t.noteBranch(100, 50, true);
    t.noteBranch(100, 50, true);
    t.noteBranch(100, 50, false);  // loop exit
    EXPECT_EQ(cleared, 1u);
    bool ok = false;
    EXPECT_EQ(t.currentContext(ok).loopSlot, -1);
}

TEST(ContextTableTest, InnerNotTakenBackwardBranchDoesNotTerminate)
{
    auto t = makeTable();
    unsigned cleared = 0;
    t.setClearHook([&](int, uint64_t) { cleared++; });
    // continue-style backward branch at 80, loop-closing branch at 100.
    t.noteBranch(100, 50, true);   // establishes Last-PC = 100
    t.noteBranch(80, 50, false);   // inner not-taken: loop is still live
    EXPECT_EQ(cleared, 0u);
    bool ok = false;
    EXPECT_EQ(t.currentContext(ok).loopPc, 50u);
}

TEST(ContextTableTest, TwoNestedLoopsTracked)
{
    auto t = makeTable();
    t.noteBranch(200, 10, true);   // outer loop
    t.noteBranch(100, 50, true);   // inner loop (more recent)
    bool ok = false;
    ContextKey key = t.currentContext(ok);
    EXPECT_EQ(key.loopPc, 50u);    // active = innermost

    // Inner terminates: outer becomes active again.
    t.noteBranch(100, 50, false);
    key = t.currentContext(ok);
    EXPECT_EQ(key.loopPc, 10u);
}

TEST(ContextTableTest, OuterTerminationClearsInnerToo)
{
    auto t = makeTable();
    unsigned cleared = 0;
    t.setClearHook([&](int, uint64_t) { cleared++; });
    t.noteBranch(200, 10, true);   // outer
    t.noteBranch(100, 50, true);   // inner (allocated after)
    t.noteBranch(200, 10, false);  // outer exits first
    EXPECT_EQ(cleared, 2u);        // both erased (paper Sec. V-C1)
}

TEST(ContextTableTest, ThirdLoopEvictsOldest)
{
    auto t = makeTable();
    unsigned cleared = 0;
    t.setClearHook([&](int, uint64_t) { cleared++; });
    t.noteBranch(100, 10, true);
    t.noteBranch(200, 20, true);
    t.noteBranch(300, 30, true);   // evicts loop@10
    EXPECT_EQ(cleared, 1u);
    bool ok = false;
    EXPECT_EQ(t.currentContext(ok).loopPc, 30u);
}

TEST(ContextTableTest, FunctionCallAtDepthOneTracked)
{
    auto t = makeTable();
    t.noteBranch(100, 50, true);
    t.noteCall(77);
    bool ok = false;
    ContextKey key = t.currentContext(ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(key.funcPc, 77u);

    t.noteReturn();
    key = t.currentContext(ok);
    EXPECT_EQ(key.funcPc, 0u);
}

TEST(ContextTableTest, DepthTwoUnsupported)
{
    auto t = makeTable();
    t.noteBranch(100, 50, true);
    t.noteCall(77);
    t.noteCall(88);
    bool ok = true;
    t.currentContext(ok);
    EXPECT_FALSE(ok);

    // Returning to depth one restores support.
    t.noteReturn();
    ContextKey key = t.currentContext(ok);
    EXPECT_TRUE(ok);
    EXPECT_EQ(key.funcPc, 77u);
}

TEST(ContextTableTest, CallsOutsideLoopsUseGlobalDepth)
{
    auto t = makeTable();
    t.noteCall(11);
    bool ok = false;
    EXPECT_EQ(t.currentContext(ok).funcPc, 11u);
    EXPECT_TRUE(ok);
    t.noteCall(22);
    t.currentContext(ok);
    EXPECT_FALSE(ok);
    t.noteReturn();
    t.noteReturn();
    EXPECT_EQ(t.currentContext(ok).funcPc, 0u);
}

TEST(ContextTableTest, StorageMatchesPaper)
{
    auto t = makeTable();
    // 2 entries x (3 x 48-bit addresses + 2 x 3-bit counters).
    EXPECT_EQ(t.storageBits(), 2u * (3 * 48 + 2 * 3));
}

}  // namespace
