/**
 * @file
 * Tests for the experiment engine (src/exp): canonical JSON round
 * trips, point hashing, spec parsing/expansion, the content-addressed
 * result cache, and the determinism contract — the same sweep produces
 * byte-identical artifacts for --jobs 1, --jobs 4, and a warm cache,
 * and a warm-cache rerun performs zero simulation work.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "driver/reports.hh"
#include "exp/artifact.hh"
#include "exp/cache.hh"
#include "exp/engine.hh"
#include "exp/json.hh"
#include "exp/merge.hh"
#include "exp/pareto.hh"
#include "exp/spec.hh"
#include "util/task_pool.hh"

namespace fs = std::filesystem;

namespace {

using namespace pbs;

/** Fresh per-test cache directory under the gtest temp dir. */
class ExpCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("pbs-exp-test-") + info->name());
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string cacheDir() const { return dir_.string(); }

    fs::path dir_;
};

exp::ExpPoint
tinyPoint(uint64_t seed = 12345, bool pbs = true)
{
    exp::ExpPoint pt;
    pt.workload = "pi";
    pt.predictor = "tage-sc-l";
    pt.functional = true;
    pt.pbs = pbs;
    pt.scale = 2000;
    pt.seed = seed;
    return pt;
}

// --- canonical JSON --------------------------------------------------

TEST(ExpJson, CanonicalDoubleRoundTrips)
{
    const double values[] = {0.0,     1.0,     -1.0,   0.5,
                             0.1,     1.0 / 3, 1e300,  -1e-300,
                             3.14159, 2e53,    123456.75};
    for (double v : values) {
        const std::string s = exp::canonicalDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
    EXPECT_EQ(exp::canonicalDouble(2.0), "2");
    EXPECT_EQ(exp::canonicalDouble(-0.0), "-0");
    EXPECT_EQ(exp::canonicalDouble(0.5), "0.5");
}

TEST(ExpJson, WriterParserRoundTrip)
{
    exp::JsonWriter w;
    w.beginObject();
    w.key("u64").value(uint64_t(18446744073709551615ull));
    w.key("str").value(std::string("a\"b\\c\nd\te"));
    w.key("arr").beginArray().value(1).value(true).null().endArray();
    w.key("nested").beginObject().key("x").value(0.25).endObject();
    w.endObject();

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(w.str(), v, err)) << err;
    EXPECT_EQ(v.find("u64")->asU64(), 18446744073709551615ull);
    EXPECT_EQ(v.find("str")->asString(), "a\"b\\c\nd\te");
    ASSERT_EQ(v.find("arr")->items.size(), 3u);
    EXPECT_TRUE(v.find("arr")->items[2].isNull());
    EXPECT_EQ(v.find("nested")->find("x")->asDouble(), 0.25);
}

TEST(ExpJson, RejectsMalformedInput)
{
    exp::JsonValue v;
    std::string err;
    EXPECT_FALSE(exp::parseJson("{", v, err));
    EXPECT_FALSE(exp::parseJson("{\"a\":}", v, err));
    EXPECT_FALSE(exp::parseJson("[1,2", v, err));
    EXPECT_FALSE(exp::parseJson("12 34", v, err));
    EXPECT_TRUE(exp::parseJson("  [1, 2]  ", v, err)) << err;
}

// --- points and hashing ----------------------------------------------

TEST(ExpPoint, JsonRoundTripsAndHashesDiscriminate)
{
    exp::ExpPoint pt = tinyPoint(7);
    pt.variant = "predicated";
    pt.numBranches = 8;

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(exp::pointJson(pt), v, err)) << err;
    exp::ExpPoint back;
    ASSERT_TRUE(exp::readPoint(v, back));
    EXPECT_EQ(back, pt);

    // The cache key is stable and sensitive to every axis.
    EXPECT_EQ(exp::cacheKey(pt), exp::cacheKey(pt));
    exp::ExpPoint other = pt;
    other.seed++;
    EXPECT_NE(exp::cacheKey(pt), exp::cacheKey(other));
    other = pt;
    other.pbs = !other.pbs;
    EXPECT_NE(exp::cacheKey(pt), exp::cacheKey(other));
    other = pt;
    other.inFlightLimit = 2;
    EXPECT_NE(exp::cacheKey(pt), exp::cacheKey(other));
}

// --- sweep specs -----------------------------------------------------

TEST(ExpSpec, ParsesKeyValueTextAndExpands)
{
    auto parsed = exp::parseSpecText(
        "# comment\n"
        "workload  = pi, dop\n"
        "predictor = tournament, tage_scl\n"
        "pbs       = off, on\n"
        "mode      = mpki\n"
        "scale     = 1000\n"
        "seeds     = 2\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;

    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    // 2 workloads x 2 predictors x 2 pbs x 1 scale x 2 seeds
    ASSERT_EQ(grid.points.size(), 16u);
    EXPECT_EQ(grid.points[0].workload, "pi");
    EXPECT_EQ(grid.points[0].predictor, "tournament");  // canonicalized
    EXPECT_EQ(grid.points[1].seed, 12346u);             // seed innermost
    EXPECT_TRUE(grid.points.back().pbs);
    EXPECT_EQ(grid.points.back().workload, "dop");
    for (const auto &pt : grid.points) {
        EXPECT_TRUE(pt.functional);       // mpki = SimMode::Functional
        EXPECT_EQ(pt.mode, "detailed");
        EXPECT_EQ(pt.scale, 1000u);
    }
}

TEST(ExpSpec, ExecutionModesExpandAndKeySeparately)
{
    auto parsed = exp::parseSpecText(
        "workload  = pi\n"
        "mode      = detailed, timing, legacy, functional, sampled\n"
        "sample-interval = 50000\n"
        "sample-warmup   = 5000\n"
        "sample-measure  = 2000\n"
        "scale     = 1000\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;

    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    ASSERT_EQ(grid.points.size(), 5u);
    EXPECT_EQ(grid.points[0].mode, "detailed");
    EXPECT_EQ(grid.points[1].mode, "detailed");  // timing alias
    EXPECT_EQ(grid.points[2].mode, "legacy");
    EXPECT_EQ(grid.points[3].mode, "functional");
    EXPECT_EQ(grid.points[4].mode, "sampled");
    for (const auto &pt : grid.points)
        EXPECT_FALSE(pt.functional);

    // Sampling parameters attach to sampled points only.
    EXPECT_EQ(grid.points[4].sampleInterval, 50000u);
    EXPECT_EQ(grid.points[4].sampleWarmup, 5000u);
    EXPECT_EQ(grid.points[4].sampleMeasure, 2000u);
    EXPECT_EQ(grid.points[0].sampleInterval, 0u);

    // The execution mode and the sampling parameters are part of the
    // canonical point JSON, so detailed, functional and sampled
    // results can never collide in the result cache.
    std::unordered_set<std::string> keys;
    for (const auto &pt : grid.points)
        keys.insert(exp::cacheKey(pt));
    EXPECT_EQ(keys.size(), 4u);  // detailed == timing, rest distinct

    exp::ExpPoint tweaked = grid.points[4];
    tweaked.sampleInterval = 60000;
    EXPECT_NE(exp::cacheKey(tweaked), exp::cacheKey(grid.points[4]));

    // Round trip through the canonical JSON preserves the new fields.
    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(exp::pointJson(grid.points[4]), v, err))
        << err;
    exp::ExpPoint back;
    ASSERT_TRUE(exp::readPoint(v, back));
    EXPECT_EQ(back, grid.points[4]);

    EXPECT_FALSE(exp::parseSpecText("mode = warp\n").ok);
    EXPECT_FALSE(exp::parseSpecText("sample-interval = 0\n").ok);
}

TEST(ExpSpec, RejectsBadAxesAndEmptySpecs)
{
    EXPECT_FALSE(exp::parseSpecText("bogus = 1\n").ok);
    EXPECT_FALSE(exp::parseSpecText("workload pi\n").ok);
    EXPECT_FALSE(exp::parseSpecText("width = 6\n").ok);
    EXPECT_FALSE(exp::parseSpecText("pbs = maybe\n").ok);

    auto parsed = exp::parseSpecText("predictor = tage-sc-l\n");
    ASSERT_TRUE(parsed.ok);
    EXPECT_FALSE(exp::expandSpec(parsed.spec).ok);  // no workloads

    auto bad = exp::parseSpecText("workload = nonesuch\n");
    ASSERT_TRUE(bad.ok);
    EXPECT_FALSE(exp::expandSpec(bad.spec).ok);
}

TEST(ExpSpec, AllKeywordSelectsEveryBenchmark)
{
    exp::SweepSpec spec;
    spec.workloads = {"all"};
    spec.scales = {100};
    auto grid = exp::expandSpec(spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    EXPECT_EQ(grid.points.size(), workloads::allBenchmarks().size());
}

// --- result cache ----------------------------------------------------

TEST_F(ExpCacheTest, StoreLoadRoundTripsBitExactly)
{
    exp::ResultCache cache(cacheDir());
    exp::ExpPoint pt = tinyPoint();
    exp::Measurement m = exp::Engine::computePoint(pt);
    const std::string key = exp::cacheKey(pt);

    ASSERT_TRUE(cache.store(key, pt, m));
    exp::Measurement loaded;
    ASSERT_TRUE(cache.load(key, pt.kind, loaded));
    EXPECT_EQ(loaded, m);

    // Unknown keys and corrupt entries miss instead of failing.
    EXPECT_FALSE(cache.load("0000", pt.kind, loaded));
    std::ofstream(fs::path(cacheDir()) / (key + ".json"))
        << "{not json";
    EXPECT_FALSE(cache.load(key, pt.kind, loaded));
}

TEST_F(ExpCacheTest, GcPrunesStaleGenerations)
{
    exp::ResultCache cache(cacheDir());
    exp::ExpPoint pt = tinyPoint();
    exp::Measurement m = exp::Engine::computePoint(pt);
    ASSERT_TRUE(cache.store(exp::cacheKey(pt), pt, m));

    // A foreign-salt entry and a stray temp file are both stale.
    std::ofstream(fs::path(cacheDir()) / "deadbeef.json")
        << "{\"salt\":\"other-version/r0/s0\",\"result\":{}}";
    std::ofstream(fs::path(cacheDir()) / "stray.json.tmp") << "x";

    auto r = cache.gc();
    EXPECT_EQ(r.kept, 1u);
    EXPECT_EQ(r.removed, 2u);

    auto all = cache.gc(/*all=*/true);
    EXPECT_EQ(all.removed, 1u);
    EXPECT_EQ(all.kept, 0u);
}

// --- engine ----------------------------------------------------------

TEST_F(ExpCacheTest, WarmCacheIsBitIdenticalAndComputesNothing)
{
    exp::ExpPoint pt = tinyPoint();

    exp::EngineConfig cfg;
    cfg.cacheDir = cacheDir();
    exp::Engine cold(cfg);
    const auto coldResult = cold.measure(pt);
    EXPECT_EQ(cold.counters().computed, 1u);
    EXPECT_EQ(cold.counters().stored, 1u);

    exp::Engine warm(cfg);
    const auto &warmResult = warm.measure(pt);
    EXPECT_EQ(warm.counters().computed, 0u);
    EXPECT_EQ(warm.counters().diskHits, 1u);

    // Bit-identical: counters and every output double.
    EXPECT_EQ(warmResult, coldResult);
    ASSERT_EQ(warmResult.outputs.size(), coldResult.outputs.size());
    for (size_t i = 0; i < coldResult.outputs.size(); i++)
        EXPECT_EQ(warmResult.outputs[i], coldResult.outputs[i]);
}

TEST_F(ExpCacheTest, SweepArtifactsAreByteIdenticalAcrossJobsAndCache)
{
    auto parsed = exp::parseSpecText(
        "workload  = pi, mc-integ\n"
        "predictor = tournament, tage-sc-l\n"
        "pbs       = off, on\n"
        "mode      = functional\n"
        "div       = 100\n"
        "seeds     = 2\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    const std::string echo = exp::specJson(parsed.spec);

    auto renderWith = [&](unsigned jobs, exp::EngineCounters *out) {
        exp::EngineConfig cfg;
        cfg.cacheDir = cacheDir();
        cfg.jobs = jobs;
        exp::Engine engine(cfg);
        engine.runAll(grid.points);
        auto json = exp::sweepJson(grid.points, engine, echo);
        auto csv = exp::sweepCsv(grid.points, engine);
        if (out)
            *out = engine.counters();
        return std::make_pair(json, csv);
    };

    fs::remove_all(cacheDir());
    exp::EngineCounters coldCounters;
    auto serial = renderWith(1, &coldCounters);
    EXPECT_EQ(coldCounters.computed, grid.points.size());

    fs::remove_all(cacheDir());
    auto parallel = renderWith(4, nullptr);

    exp::EngineCounters warmCounters;
    auto warm = renderWith(4, &warmCounters);
    EXPECT_EQ(warmCounters.computed, 0u)
        << "warm rerun must do zero simulation work";
    EXPECT_EQ(warmCounters.diskHits, grid.points.size());

    // The determinism contract: byte-identical artifacts.
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.first, warm.first);
    EXPECT_EQ(serial.second, parallel.second);
    EXPECT_EQ(serial.second, warm.second);

    // And the artifact parses back.
    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(serial.first, v, err)) << err;
    EXPECT_EQ(v.find("schema")->asString(), "pbs-sweep-v1");
    EXPECT_EQ(v.find("points")->items.size(), grid.points.size());
}

TEST_F(ExpCacheTest, ReportRendersIdenticallyColdAndWarm)
{
    auto render = [&]() {
        exp::EngineConfig cfg;
        cfg.cacheDir = cacheDir();
        cfg.jobs = 2;
        exp::Engine engine(cfg);
        driver::ReportContext ctx{engine, 200};
        ::testing::internal::CaptureStdout();
        EXPECT_EQ(driver::runReport("fig01", ctx), 0);
        return ::testing::internal::GetCapturedStdout();
    };
    const std::string cold = render();
    const std::string warm = render();
    EXPECT_FALSE(cold.empty());
    EXPECT_EQ(cold, warm);
}

// --- batch JSON ------------------------------------------------------

TEST(ExpArtifact, BatchJsonCarriesConfigAndPerSeedMetrics)
{
    auto parsed = driver::parseArgs(
        {"--workload", "pi", "--functional", "--pbs", "--scale", "2000",
         "--seeds", "3", "--format", "json"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    auto results = driver::runBatch(parsed.opts);
    const std::string json = exp::batchJson(parsed.opts, results);

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(json, v, err)) << err;
    EXPECT_EQ(v.find("schema")->asString(), "pbs-batch-v2");
    EXPECT_EQ(v.find("config")->find("workload")->asString(), "pi");
    EXPECT_TRUE(v.find("config")->find("pbs")->asBool());
    // Non-sampled runs carry no checkpoint-set identity.
    EXPECT_EQ(v.find("config")->find("ckpt_set"), nullptr);
    const auto *runs = v.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 3u);
    EXPECT_EQ(runs->items[0].find("seed")->asU64(), 12345u);
    const auto *stats =
        runs->items[0].find("result")->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_GT(stats->find("instructions")->asU64(), 0u);
}

// --- sample-grid axis ------------------------------------------------

TEST(ExpSpec, SampleGridMultipliesSampledPointsOnly)
{
    auto parsed = exp::parseSpecText(
        "workload = pi\n"
        "mode = detailed, sampled\n"
        "sample-grid = 100000/10000/5000, 200000/20000/10000\n"
        "scale = 1000\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;

    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    ASSERT_EQ(grid.points.size(), 3u);  // 1 detailed + 2 sampled
    EXPECT_EQ(grid.points[0].mode, "detailed");
    EXPECT_EQ(grid.points[0].sampleInterval, 0u);
    EXPECT_EQ(grid.points[1].mode, "sampled");
    EXPECT_EQ(grid.points[1].sampleInterval, 100000u);
    EXPECT_EQ(grid.points[1].sampleWarmup, 10000u);
    EXPECT_EQ(grid.points[1].sampleMeasure, 5000u);
    EXPECT_EQ(grid.points[2].sampleInterval, 200000u);

    // Distinct triples key distinct cache entries.
    EXPECT_NE(exp::cacheKey(grid.points[1]),
              exp::cacheKey(grid.points[2]));

    // Malformed and inconsistent triples are rejected at parse time.
    EXPECT_FALSE(exp::parseSpecText("sample-grid = 1000\n").ok);
    EXPECT_FALSE(exp::parseSpecText("sample-grid = 0/0/0\n").ok);
    EXPECT_FALSE(
        exp::parseSpecText("sample-grid = 1000/900/200\n").ok);
}

// --- shard partial results and their merge ---------------------------

/**
 * The cross-process fan-out contract end to end, in-process: save a
 * checkpoint set, run both shards, merge, and require the merged
 * document byte-identical to the single-process batch document.
 */
class ShardMergeTest : public ExpCacheTest
{
  protected:
    static constexpr const char *kSalt = "shard-test-salt/r1/s1";

    driver::DriverOptions
    baseOpts(std::initializer_list<std::string> extra) const
    {
        std::vector<std::string> args = {
            "--workload", "pi", "--mode", "sampled", "--div", "20",
            "--seed", "5", "--sample-interval", "40000",
            "--sample-warmup", "10000", "--sample-measure", "5000",
            "--format", "json"};
        args.insert(args.end(), extra);
        auto parsed = driver::parseArgs(args);
        EXPECT_TRUE(parsed.ok) << parsed.error;
        driver::DriverOptions opts = parsed.opts;
        opts.storeSalt = kSalt;
        return opts;
    }
};

TEST_F(ShardMergeTest, MergedShardsAreByteIdenticalToSingleProcess)
{
    // Single process, saving the set as a side effect.
    auto saveOpts = baseOpts({"--save-checkpoints", cacheDir()});
    const std::string single =
        exp::batchJson(saveOpts, driver::runBatch(saveOpts));

    // Two independent "processes" claim complementary slices.
    const std::string part1 = exp::runShard(
        baseOpts({"--load-checkpoints", cacheDir(), "--shard", "1/2"}));
    const std::string part2 = exp::runShard(
        baseOpts({"--load-checkpoints", cacheDir(), "--shard", "2/2"}));

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(part1, v, err)) << err;
    EXPECT_EQ(v.find("schema")->asString(), "pbs-shard-v1");
    EXPECT_GT(v.find("samples")->items.size(), 0u);

    const std::string merged = exp::mergeShards({part1, part2});
    EXPECT_EQ(merged, single);

    // Shard order must not matter.
    EXPECT_EQ(exp::mergeShards({part2, part1}), single);

    // The single-process document carries the set identity the
    // shards measured against.
    ASSERT_TRUE(exp::parseJson(single, v, err)) << err;
    ASSERT_NE(v.find("config")->find("ckpt_set"), nullptr);
    EXPECT_EQ(v.find("config")->find("ckpt_set")->asString(),
              sampling::storeSetHash(
                  driver::checkpointStoreKey(saveOpts)));
}

TEST_F(ShardMergeTest, MergeRejectsOverlapGapsAndForeignShards)
{
    auto saveOpts = baseOpts({"--save-checkpoints", cacheDir()});
    driver::runBatch(saveOpts);
    const std::string part1 = exp::runShard(
        baseOpts({"--load-checkpoints", cacheDir(), "--shard", "1/2"}));
    const std::string part2 = exp::runShard(
        baseOpts({"--load-checkpoints", cacheDir(), "--shard", "2/2"}));

    auto failure = [](std::vector<std::string> docs) {
        try {
            exp::mergeShards(docs);
        } catch (const std::runtime_error &e) {
            return std::string(e.what());
        }
        return std::string();
    };

    // The same shard twice overlaps; a lone shard leaves gaps.
    EXPECT_NE(failure({part1, part1}).find("overlapping"),
              std::string::npos);
    EXPECT_NE(failure({part1}).find("missing"), std::string::npos);
    EXPECT_NE(failure({}).find("no shard"), std::string::npos);

    // A shard from a different checkpoint set is refused.
    std::string foreign = part2;
    const size_t at = foreign.find("\"set_hash\":\"");
    ASSERT_NE(at, std::string::npos);
    foreign[at + 12] = foreign[at + 12] == '0' ? '1' : '0';
    EXPECT_NE(failure({part1, foreign}).find("different checkpoint"),
              std::string::npos);

    // Junk input is named, not crashed on.
    EXPECT_NE(failure({part1, "{not json"}).find("not valid JSON"),
              std::string::npos);
    EXPECT_NE(failure({part1, "{}"}).find("shard result"),
              std::string::npos);
}

// --- campaign mode ---------------------------------------------------

/** A fig07-style predictor x PBS grid over one sampled workload. */
class CampaignTest : public ExpCacheTest
{
  protected:
    std::vector<exp::ExpPoint>
    grid() const
    {
        auto parsed = exp::parseSpecText(
            "workload = pi\n"
            "predictor = tournament, tage-sc-l\n"
            "pbs = off, on\n"
            "mode = sampled\n"
            "sample-grid = 40000/10000/5000\n"
            "div = 20\n");
        EXPECT_TRUE(parsed.ok) << parsed.error;
        auto expanded = exp::expandSpec(parsed.spec);
        EXPECT_TRUE(expanded.ok) << expanded.error;
        return expanded.points;
    }

    /** Run the grid; return (sweep JSON, counters). */
    std::pair<std::string, exp::EngineCounters>
    run(const std::vector<exp::ExpPoint> &points, bool campaign,
        const std::string &dir, unsigned jobs = 2)
    {
        exp::EngineConfig cfg;
        cfg.cacheDir = dir;
        cfg.jobs = jobs;
        cfg.campaign = campaign;
        exp::Engine engine(cfg);
        engine.runAll(points);
        return {exp::sweepJson(points, engine, ""),
                engine.counters()};
    }
};

TEST_F(CampaignTest, CapturesOncePerStoreKeyAndMatchesPerPointPath)
{
    const auto points = grid();
    ASSERT_EQ(points.size(), 4u);

    // All four configs share one checkpoint StoreKey by construction.
    std::unordered_set<std::string> storeKeys;
    for (const auto &pt : points)
        storeKeys.insert(sampling::storeSetHash(
            exp::checkpointStoreKey(pt, exp::versionSalt())));
    ASSERT_EQ(storeKeys.size(), 1u);

    // Reference: the per-point path, cache disabled.
    const auto [reference, refCounters] = run(points, false, "");
    EXPECT_EQ(refCounters.computed, 4u);
    EXPECT_EQ(refCounters.captures, 0u);

    // Campaign: one capture serves the whole grid, every interval is
    // measured exactly once per config and persisted as a partial.
    const auto [artifact, c] = run(points, true, cacheDir());
    EXPECT_EQ(artifact, reference)
        << "campaign scheduling must not change results";
    EXPECT_EQ(c.campaignGroups, storeKeys.size());
    EXPECT_EQ(c.captures, storeKeys.size())
        << "exactly one capture per distinct StoreKey";
    EXPECT_EQ(c.ckptSetLoads, 0u);
    EXPECT_EQ(c.computed, 4u);
    EXPECT_EQ(c.partialHits, 0u);
    EXPECT_GT(c.partialComputed, 0u);
    EXPECT_EQ(c.partialComputed % 4u, 0u)
        << "every config measures the same shared interval set";
    EXPECT_EQ(c.partialStored, c.partialComputed);

    // Warm rerun: everything is a disk hit, nothing is re-simulated
    // and nothing is re-captured.
    const auto [warm, w] = run(points, true, cacheDir());
    EXPECT_EQ(warm, reference);
    EXPECT_EQ(w.computed, 0u);
    EXPECT_EQ(w.captures, 0u);
    EXPECT_EQ(w.partialComputed, 0u);
    EXPECT_EQ(w.diskHits, 4u);
}

TEST_F(CampaignTest, ResumesInterruptedRunWithZeroResimulation)
{
    const auto points = grid();

    // Single-shot cold campaign: the document to reproduce.
    const auto [reference, cold] = run(points, true, cacheDir());
    ASSERT_GT(cold.partialStored, 4u);

    // "Kill" the campaign partway: final results never landed and
    // only some partials survived (delete every other one).
    for (const auto &e : fs::directory_iterator(cacheDir()))
        if (e.is_regular_file())
            fs::remove(e.path());
    size_t kept = 0, dropped = 0;
    {
        std::vector<fs::path> partials;
        for (const auto &e :
             fs::directory_iterator(fs::path(cacheDir()) / "partials"))
            partials.push_back(e.path());
        std::sort(partials.begin(), partials.end());
        for (size_t i = 0; i < partials.size(); i++) {
            if (i % 2) {
                fs::remove(partials[i]);
                dropped++;
            } else {
                kept++;
            }
        }
    }
    ASSERT_GT(kept, 0u);
    ASSERT_GT(dropped, 0u);

    // Resume: byte-identical document, zero re-captures, full reuse
    // of every surviving partial.
    const auto [resumed, c] = run(points, true, cacheDir());
    EXPECT_EQ(resumed, reference)
        << "an interrupted-then-resumed campaign must reproduce the "
           "single-shot document byte-identically";
    EXPECT_EQ(c.captures, 0u) << "zero re-captures on resume";
    EXPECT_EQ(c.ckptSetLoads, 1u);
    EXPECT_EQ(c.partialHits, kept) << "100% reuse of kept partials";
    EXPECT_EQ(c.partialComputed, dropped);
    EXPECT_EQ(c.computed, 4u);
}

TEST_F(CampaignTest, InvariantsHoldUnderStealingAndJitter)
{
    // pointCost is now only a placement hint for the work-stealing
    // scheduler — under heavy steal-order perturbation at --jobs 8
    // the campaign contract must hold unchanged: byte-identical
    // artifact, one capture per distinct StoreKey, every partial
    // stored.
    const auto points = grid();
    std::unordered_set<std::string> storeKeys;
    for (const auto &pt : points)
        storeKeys.insert(sampling::storeSetHash(
            exp::checkpointStoreKey(pt, exp::versionSalt())));

    const auto [reference, refC] = run(points, true, cacheDir(), 1);

    pool::TaskPool::instance().setStealJitter(99, 100);
    fs::remove_all(cacheDir());
    const auto [jittered, c] = run(points, true, cacheDir(), 8);
    pool::TaskPool::instance().setStealJitter(0, 0);
    pool::TaskPool::instance().configure(1);

    EXPECT_EQ(jittered, reference);
    EXPECT_EQ(c.captures, storeKeys.size())
        << "capture-once must survive steal scheduling";
    EXPECT_EQ(c.campaignGroups, storeKeys.size());
    EXPECT_EQ(c.computed, refC.computed);
    EXPECT_EQ(c.partialComputed, refC.partialComputed);
    EXPECT_EQ(c.partialStored, c.partialComputed);
}

TEST_F(CampaignTest, ResumeSurvivesStealJitter)
{
    // The interrupted-resume path, re-run with the steal order
    // perturbed: surviving partials must still be reused 1:1 and the
    // resumed document must reproduce the cold one byte-for-byte.
    const auto points = grid();
    const auto [reference, cold] = run(points, true, cacheDir(), 8);
    ASSERT_GT(cold.partialStored, 4u);

    for (const auto &e : fs::directory_iterator(cacheDir()))
        if (e.is_regular_file())
            fs::remove(e.path());
    size_t kept = 0, dropped = 0;
    {
        std::vector<fs::path> partials;
        for (const auto &e :
             fs::directory_iterator(fs::path(cacheDir()) / "partials"))
            partials.push_back(e.path());
        std::sort(partials.begin(), partials.end());
        for (size_t i = 0; i < partials.size(); i++) {
            if (i % 2) {
                fs::remove(partials[i]);
                dropped++;
            } else {
                kept++;
            }
        }
    }
    ASSERT_GT(kept, 0u);
    ASSERT_GT(dropped, 0u);

    pool::TaskPool::instance().setStealJitter(7, 150);
    const auto [resumed, c] = run(points, true, cacheDir(), 8);
    pool::TaskPool::instance().setStealJitter(0, 0);
    pool::TaskPool::instance().configure(1);

    EXPECT_EQ(resumed, reference);
    EXPECT_EQ(c.captures, 0u);
    EXPECT_EQ(c.partialHits, kept);
    EXPECT_EQ(c.partialComputed, dropped);
}

TEST_F(ExpCacheTest, PointCostReflectsSampleParameters)
{
    exp::ExpPoint detailed;
    detailed.workload = "pi";
    detailed.mode = "detailed";
    detailed.scale = 1'000'000;

    exp::ExpPoint dense = detailed;
    dense.mode = "sampled";  // defaults: 500k interval, 160k detailed

    exp::ExpPoint sparse = dense;
    sparse.sampleInterval = 2'000'000;
    sparse.sampleWarmup = 100'000;
    sparse.sampleMeasure = 60'000;

    // A sparse-interval Pareto point simulates far fewer detailed
    // instructions than the default config and must cost less, and
    // both must undercut full detailed timing.
    EXPECT_LT(exp::pointCost(sparse), exp::pointCost(dense));
    EXPECT_LT(exp::pointCost(dense), exp::pointCost(detailed));

    // More measured instructions per interval -> more cost.
    exp::ExpPoint heavy = dense;
    heavy.sampleMeasure = 300'000;
    EXPECT_GT(exp::pointCost(heavy), exp::pointCost(dense));
}

TEST_F(ExpCacheTest, StoreFailureWarnsOnceAndCounts)
{
    // Occupy the cache path with a regular file: every store fails.
    std::ofstream(dir_) << "not a directory";

    exp::EngineConfig cfg;
    cfg.cacheDir = cacheDir();
    exp::Engine engine(cfg);

    ::testing::internal::CaptureStderr();
    engine.measure(tinyPoint(1));
    engine.measure(tinyPoint(2));
    const std::string err = ::testing::internal::GetCapturedStderr();

    EXPECT_EQ(engine.counters().computed, 2u);
    EXPECT_EQ(engine.counters().stored, 0u);
    EXPECT_EQ(engine.counters().storeFailed, 2u);

    // Warn once, not per failure.
    const std::string needle = "failed to write";
    size_t first = err.find(needle);
    ASSERT_NE(first, std::string::npos) << err;
    EXPECT_EQ(err.find(needle, first + 1), std::string::npos) << err;
}

TEST_F(ExpCacheTest, GcGraceSparesFreshEntriesOfEveryKind)
{
    exp::ResultCache cache(cacheDir());
    exp::ExpPoint pt = tinyPoint();
    ASSERT_TRUE(
        cache.store(exp::cacheKey(pt), pt, exp::Measurement{}));

    // Freshly-written stale-salt state of all three kinds, as an
    // in-flight campaign under older code would leave behind.
    fs::create_directories(fs::path(cacheDir()) / "partials");
    std::ofstream(fs::path(cacheDir()) / "deadbeef.json")
        << "{\"salt\":\"other-version/r0/s0\"}";
    std::ofstream(fs::path(cacheDir()) / "partials" / "cafe.json")
        << "{\"salt\":\"other-version/r0/s0\"}";
    fs::create_directories(fs::path(cacheDir()) / "ckpt" / "ffff");
    std::ofstream(fs::path(cacheDir()) / "ckpt" / "ffff" /
                  "manifest.json")
        << "{\"key\":{\"salt\":\"other-version/r0/s0\"}}";

    // Within the grace window nothing may be deleted — a concurrent
    // writer could still be mid-campaign.
    auto graced = cache.gc(false, /*graceSeconds=*/3600);
    EXPECT_EQ(graced.removed, 0u);
    EXPECT_EQ(graced.kept, 4u);
    // Even --all respects the grace window.
    EXPECT_EQ(cache.gc(true, 3600).removed, 0u);

    // Without grace the stale generations go and the live entry stays.
    auto r = cache.gc(false, 0);
    EXPECT_EQ(r.removed, 3u);
    EXPECT_EQ(r.kept, 1u);
    exp::Measurement m;
    EXPECT_TRUE(cache.load(exp::cacheKey(pt), pt.kind, m));
}

TEST_F(ShardMergeTest, MergeThroughCacheStoresAndFillsFromPartials)
{
    auto saveOpts = baseOpts({"--save-checkpoints", cacheDir()});
    const std::string single =
        exp::batchJson(saveOpts, driver::runBatch(saveOpts));
    const std::string part1 = exp::runShard(
        baseOpts({"--load-checkpoints", cacheDir(), "--shard", "1/2"}));
    const std::string part2 = exp::runShard(
        baseOpts({"--load-checkpoints", cacheDir(), "--shard", "2/2"}));

    // Through the cache: same bytes as the cache-less merge, plus
    // every per-interval sample persisted as a partial and the merged
    // measurement stored as an ordinary result entry.
    const fs::path expDir = fs::path(cacheDir()) / "exp-cache";
    exp::ResultCache cache(expDir.string());
    EXPECT_EQ(exp::mergeShards({part1, part2}, &cache), single);

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(single, v, err)) << err;
    exp::ExpPoint pt;
    ASSERT_TRUE(exp::pointFromBatchConfig(*v.find("config"), pt));
    exp::Measurement m;
    EXPECT_TRUE(cache.load(exp::cacheKey(pt), pt.kind, m))
        << "the merged measurement must be a result-cache entry";

    // A lone shard normally fails with gaps — but with the cache the
    // missing intervals come from the partials the first merge wrote.
    EXPECT_THROW(exp::mergeShards({part1}), std::runtime_error);
    EXPECT_EQ(exp::mergeShards({part1}, &cache), single);
    EXPECT_EQ(exp::mergeShards({part2}, &cache), single);

    // And the engine sees the merged result as a plain disk hit: the
    // sharded fan-out now feeds sweeps through one cache path.
    exp::EngineConfig ecfg;
    ecfg.cacheDir = expDir.string();
    exp::Engine engine(ecfg);
    EXPECT_EQ(engine.measure(pt), m);
    EXPECT_EQ(engine.counters().computed, 0u);
    EXPECT_EQ(engine.counters().diskHits, 1u);
}

TEST(DriverShardOptions, ShardFlagValidation)
{
    auto ok = driver::parseArgs(
        {"--workload", "pi", "--mode", "sampled", "--load-checkpoints",
         "d", "--shard", "2/4", "--format", "json"});
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_EQ(ok.opts.shardIndex, 2u);
    EXPECT_EQ(ok.opts.shardCount, 4u);

    // Out-of-range and malformed shard specs.
    for (const char *bad : {"0/2", "3/2", "2", "a/b", "1/0"}) {
        EXPECT_FALSE(driver::parseArgs(
                         {"--workload", "pi", "--mode", "sampled",
                          "--load-checkpoints", "d", "--shard", bad,
                          "--format", "json"})
                         .ok)
            << bad;
    }

    // Store flags demand sampled mode, one seed, and a json shard.
    EXPECT_FALSE(driver::parseArgs(
                     {"--workload", "pi", "--save-checkpoints", "d"})
                     .ok);
    EXPECT_FALSE(driver::parseArgs(
                     {"--workload", "pi", "--mode", "sampled",
                      "--seeds", "2", "--save-checkpoints", "d"})
                     .ok);
    EXPECT_FALSE(driver::parseArgs(
                     {"--workload", "pi", "--mode", "sampled",
                      "--save-checkpoints", "d", "--load-checkpoints",
                      "d"})
                     .ok);
    EXPECT_FALSE(driver::parseArgs(
                     {"--workload", "pi", "--mode", "sampled",
                      "--load-checkpoints", "d", "--shard", "1/2"})
                     .ok);  // text format
    EXPECT_FALSE(driver::parseArgs(
                     {"--workload", "pi", "--mode", "sampled",
                      "--shard", "1/2", "--format", "json"})
                     .ok);  // no --load-checkpoints
}

}  // namespace
