/**
 * @file
 * Tests for the experiment engine (src/exp): canonical JSON round
 * trips, point hashing, spec parsing/expansion, the content-addressed
 * result cache, and the determinism contract — the same sweep produces
 * byte-identical artifacts for --jobs 1, --jobs 4, and a warm cache,
 * and a warm-cache rerun performs zero simulation work.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <unordered_set>

#include <gtest/gtest.h>

#include "driver/reports.hh"
#include "exp/artifact.hh"
#include "exp/cache.hh"
#include "exp/engine.hh"
#include "exp/json.hh"
#include "exp/spec.hh"

namespace fs = std::filesystem;

namespace {

using namespace pbs;

/** Fresh per-test cache directory under the gtest temp dir. */
class ExpCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir_ = fs::path(::testing::TempDir()) /
               (std::string("pbs-exp-test-") + info->name());
        fs::remove_all(dir_);
    }

    void TearDown() override { fs::remove_all(dir_); }

    std::string cacheDir() const { return dir_.string(); }

    fs::path dir_;
};

exp::ExpPoint
tinyPoint(uint64_t seed = 12345, bool pbs = true)
{
    exp::ExpPoint pt;
    pt.workload = "pi";
    pt.predictor = "tage-sc-l";
    pt.functional = true;
    pt.pbs = pbs;
    pt.scale = 2000;
    pt.seed = seed;
    return pt;
}

// --- canonical JSON --------------------------------------------------

TEST(ExpJson, CanonicalDoubleRoundTrips)
{
    const double values[] = {0.0,     1.0,     -1.0,   0.5,
                             0.1,     1.0 / 3, 1e300,  -1e-300,
                             3.14159, 2e53,    123456.75};
    for (double v : values) {
        const std::string s = exp::canonicalDouble(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
    EXPECT_EQ(exp::canonicalDouble(2.0), "2");
    EXPECT_EQ(exp::canonicalDouble(-0.0), "-0");
    EXPECT_EQ(exp::canonicalDouble(0.5), "0.5");
}

TEST(ExpJson, WriterParserRoundTrip)
{
    exp::JsonWriter w;
    w.beginObject();
    w.key("u64").value(uint64_t(18446744073709551615ull));
    w.key("str").value(std::string("a\"b\\c\nd\te"));
    w.key("arr").beginArray().value(1).value(true).null().endArray();
    w.key("nested").beginObject().key("x").value(0.25).endObject();
    w.endObject();

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(w.str(), v, err)) << err;
    EXPECT_EQ(v.find("u64")->asU64(), 18446744073709551615ull);
    EXPECT_EQ(v.find("str")->asString(), "a\"b\\c\nd\te");
    ASSERT_EQ(v.find("arr")->items.size(), 3u);
    EXPECT_TRUE(v.find("arr")->items[2].isNull());
    EXPECT_EQ(v.find("nested")->find("x")->asDouble(), 0.25);
}

TEST(ExpJson, RejectsMalformedInput)
{
    exp::JsonValue v;
    std::string err;
    EXPECT_FALSE(exp::parseJson("{", v, err));
    EXPECT_FALSE(exp::parseJson("{\"a\":}", v, err));
    EXPECT_FALSE(exp::parseJson("[1,2", v, err));
    EXPECT_FALSE(exp::parseJson("12 34", v, err));
    EXPECT_TRUE(exp::parseJson("  [1, 2]  ", v, err)) << err;
}

// --- points and hashing ----------------------------------------------

TEST(ExpPoint, JsonRoundTripsAndHashesDiscriminate)
{
    exp::ExpPoint pt = tinyPoint(7);
    pt.variant = "predicated";
    pt.numBranches = 8;

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(exp::pointJson(pt), v, err)) << err;
    exp::ExpPoint back;
    ASSERT_TRUE(exp::readPoint(v, back));
    EXPECT_EQ(back, pt);

    // The cache key is stable and sensitive to every axis.
    EXPECT_EQ(exp::cacheKey(pt), exp::cacheKey(pt));
    exp::ExpPoint other = pt;
    other.seed++;
    EXPECT_NE(exp::cacheKey(pt), exp::cacheKey(other));
    other = pt;
    other.pbs = !other.pbs;
    EXPECT_NE(exp::cacheKey(pt), exp::cacheKey(other));
    other = pt;
    other.inFlightLimit = 2;
    EXPECT_NE(exp::cacheKey(pt), exp::cacheKey(other));
}

// --- sweep specs -----------------------------------------------------

TEST(ExpSpec, ParsesKeyValueTextAndExpands)
{
    auto parsed = exp::parseSpecText(
        "# comment\n"
        "workload  = pi, dop\n"
        "predictor = tournament, tage_scl\n"
        "pbs       = off, on\n"
        "mode      = mpki\n"
        "scale     = 1000\n"
        "seeds     = 2\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;

    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    // 2 workloads x 2 predictors x 2 pbs x 1 scale x 2 seeds
    ASSERT_EQ(grid.points.size(), 16u);
    EXPECT_EQ(grid.points[0].workload, "pi");
    EXPECT_EQ(grid.points[0].predictor, "tournament");  // canonicalized
    EXPECT_EQ(grid.points[1].seed, 12346u);             // seed innermost
    EXPECT_TRUE(grid.points.back().pbs);
    EXPECT_EQ(grid.points.back().workload, "dop");
    for (const auto &pt : grid.points) {
        EXPECT_TRUE(pt.functional);       // mpki = SimMode::Functional
        EXPECT_EQ(pt.mode, "detailed");
        EXPECT_EQ(pt.scale, 1000u);
    }
}

TEST(ExpSpec, ExecutionModesExpandAndKeySeparately)
{
    auto parsed = exp::parseSpecText(
        "workload  = pi\n"
        "mode      = detailed, timing, legacy, functional, sampled\n"
        "sample-interval = 50000\n"
        "sample-warmup   = 5000\n"
        "sample-measure  = 2000\n"
        "scale     = 1000\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;

    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    ASSERT_EQ(grid.points.size(), 5u);
    EXPECT_EQ(grid.points[0].mode, "detailed");
    EXPECT_EQ(grid.points[1].mode, "detailed");  // timing alias
    EXPECT_EQ(grid.points[2].mode, "legacy");
    EXPECT_EQ(grid.points[3].mode, "functional");
    EXPECT_EQ(grid.points[4].mode, "sampled");
    for (const auto &pt : grid.points)
        EXPECT_FALSE(pt.functional);

    // Sampling parameters attach to sampled points only.
    EXPECT_EQ(grid.points[4].sampleInterval, 50000u);
    EXPECT_EQ(grid.points[4].sampleWarmup, 5000u);
    EXPECT_EQ(grid.points[4].sampleMeasure, 2000u);
    EXPECT_EQ(grid.points[0].sampleInterval, 0u);

    // The execution mode and the sampling parameters are part of the
    // canonical point JSON, so detailed, functional and sampled
    // results can never collide in the result cache.
    std::unordered_set<std::string> keys;
    for (const auto &pt : grid.points)
        keys.insert(exp::cacheKey(pt));
    EXPECT_EQ(keys.size(), 4u);  // detailed == timing, rest distinct

    exp::ExpPoint tweaked = grid.points[4];
    tweaked.sampleInterval = 60000;
    EXPECT_NE(exp::cacheKey(tweaked), exp::cacheKey(grid.points[4]));

    // Round trip through the canonical JSON preserves the new fields.
    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(exp::pointJson(grid.points[4]), v, err))
        << err;
    exp::ExpPoint back;
    ASSERT_TRUE(exp::readPoint(v, back));
    EXPECT_EQ(back, grid.points[4]);

    EXPECT_FALSE(exp::parseSpecText("mode = warp\n").ok);
    EXPECT_FALSE(exp::parseSpecText("sample-interval = 0\n").ok);
}

TEST(ExpSpec, RejectsBadAxesAndEmptySpecs)
{
    EXPECT_FALSE(exp::parseSpecText("bogus = 1\n").ok);
    EXPECT_FALSE(exp::parseSpecText("workload pi\n").ok);
    EXPECT_FALSE(exp::parseSpecText("width = 6\n").ok);
    EXPECT_FALSE(exp::parseSpecText("pbs = maybe\n").ok);

    auto parsed = exp::parseSpecText("predictor = tage-sc-l\n");
    ASSERT_TRUE(parsed.ok);
    EXPECT_FALSE(exp::expandSpec(parsed.spec).ok);  // no workloads

    auto bad = exp::parseSpecText("workload = nonesuch\n");
    ASSERT_TRUE(bad.ok);
    EXPECT_FALSE(exp::expandSpec(bad.spec).ok);
}

TEST(ExpSpec, AllKeywordSelectsEveryBenchmark)
{
    exp::SweepSpec spec;
    spec.workloads = {"all"};
    spec.scales = {100};
    auto grid = exp::expandSpec(spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    EXPECT_EQ(grid.points.size(), workloads::allBenchmarks().size());
}

// --- result cache ----------------------------------------------------

TEST_F(ExpCacheTest, StoreLoadRoundTripsBitExactly)
{
    exp::ResultCache cache(cacheDir());
    exp::ExpPoint pt = tinyPoint();
    exp::Measurement m = exp::Engine::computePoint(pt);
    const std::string key = exp::cacheKey(pt);

    ASSERT_TRUE(cache.store(key, pt, m));
    exp::Measurement loaded;
    ASSERT_TRUE(cache.load(key, pt.kind, loaded));
    EXPECT_EQ(loaded, m);

    // Unknown keys and corrupt entries miss instead of failing.
    EXPECT_FALSE(cache.load("0000", pt.kind, loaded));
    std::ofstream(fs::path(cacheDir()) / (key + ".json"))
        << "{not json";
    EXPECT_FALSE(cache.load(key, pt.kind, loaded));
}

TEST_F(ExpCacheTest, GcPrunesStaleGenerations)
{
    exp::ResultCache cache(cacheDir());
    exp::ExpPoint pt = tinyPoint();
    exp::Measurement m = exp::Engine::computePoint(pt);
    ASSERT_TRUE(cache.store(exp::cacheKey(pt), pt, m));

    // A foreign-salt entry and a stray temp file are both stale.
    std::ofstream(fs::path(cacheDir()) / "deadbeef.json")
        << "{\"salt\":\"other-version/r0/s0\",\"result\":{}}";
    std::ofstream(fs::path(cacheDir()) / "stray.json.tmp") << "x";

    auto r = cache.gc();
    EXPECT_EQ(r.kept, 1u);
    EXPECT_EQ(r.removed, 2u);

    auto all = cache.gc(/*all=*/true);
    EXPECT_EQ(all.removed, 1u);
    EXPECT_EQ(all.kept, 0u);
}

// --- engine ----------------------------------------------------------

TEST_F(ExpCacheTest, WarmCacheIsBitIdenticalAndComputesNothing)
{
    exp::ExpPoint pt = tinyPoint();

    exp::EngineConfig cfg;
    cfg.cacheDir = cacheDir();
    exp::Engine cold(cfg);
    const auto coldResult = cold.measure(pt);
    EXPECT_EQ(cold.counters().computed, 1u);
    EXPECT_EQ(cold.counters().stored, 1u);

    exp::Engine warm(cfg);
    const auto &warmResult = warm.measure(pt);
    EXPECT_EQ(warm.counters().computed, 0u);
    EXPECT_EQ(warm.counters().diskHits, 1u);

    // Bit-identical: counters and every output double.
    EXPECT_EQ(warmResult, coldResult);
    ASSERT_EQ(warmResult.outputs.size(), coldResult.outputs.size());
    for (size_t i = 0; i < coldResult.outputs.size(); i++)
        EXPECT_EQ(warmResult.outputs[i], coldResult.outputs[i]);
}

TEST_F(ExpCacheTest, SweepArtifactsAreByteIdenticalAcrossJobsAndCache)
{
    auto parsed = exp::parseSpecText(
        "workload  = pi, mc-integ\n"
        "predictor = tournament, tage-sc-l\n"
        "pbs       = off, on\n"
        "mode      = functional\n"
        "div       = 100\n"
        "seeds     = 2\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;
    const std::string echo = exp::specJson(parsed.spec);

    auto renderWith = [&](unsigned jobs, exp::EngineCounters *out) {
        exp::EngineConfig cfg;
        cfg.cacheDir = cacheDir();
        cfg.jobs = jobs;
        exp::Engine engine(cfg);
        engine.runAll(grid.points);
        auto json = exp::sweepJson(grid.points, engine, echo);
        auto csv = exp::sweepCsv(grid.points, engine);
        if (out)
            *out = engine.counters();
        return std::make_pair(json, csv);
    };

    fs::remove_all(cacheDir());
    exp::EngineCounters coldCounters;
    auto serial = renderWith(1, &coldCounters);
    EXPECT_EQ(coldCounters.computed, grid.points.size());

    fs::remove_all(cacheDir());
    auto parallel = renderWith(4, nullptr);

    exp::EngineCounters warmCounters;
    auto warm = renderWith(4, &warmCounters);
    EXPECT_EQ(warmCounters.computed, 0u)
        << "warm rerun must do zero simulation work";
    EXPECT_EQ(warmCounters.diskHits, grid.points.size());

    // The determinism contract: byte-identical artifacts.
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.first, warm.first);
    EXPECT_EQ(serial.second, parallel.second);
    EXPECT_EQ(serial.second, warm.second);

    // And the artifact parses back.
    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(serial.first, v, err)) << err;
    EXPECT_EQ(v.find("schema")->asString(), "pbs-sweep-v1");
    EXPECT_EQ(v.find("points")->items.size(), grid.points.size());
}

TEST_F(ExpCacheTest, ReportRendersIdenticallyColdAndWarm)
{
    auto render = [&]() {
        exp::EngineConfig cfg;
        cfg.cacheDir = cacheDir();
        cfg.jobs = 2;
        exp::Engine engine(cfg);
        driver::ReportContext ctx{engine, 200};
        ::testing::internal::CaptureStdout();
        EXPECT_EQ(driver::runReport("fig01", ctx), 0);
        return ::testing::internal::GetCapturedStdout();
    };
    const std::string cold = render();
    const std::string warm = render();
    EXPECT_FALSE(cold.empty());
    EXPECT_EQ(cold, warm);
}

// --- batch JSON ------------------------------------------------------

TEST(ExpArtifact, BatchJsonCarriesConfigAndPerSeedMetrics)
{
    auto parsed = driver::parseArgs(
        {"--workload", "pi", "--functional", "--pbs", "--scale", "2000",
         "--seeds", "3", "--format", "json"});
    ASSERT_TRUE(parsed.ok) << parsed.error;
    auto results = driver::runBatch(parsed.opts);
    const std::string json = exp::batchJson(parsed.opts, results);

    exp::JsonValue v;
    std::string err;
    ASSERT_TRUE(exp::parseJson(json, v, err)) << err;
    EXPECT_EQ(v.find("schema")->asString(), "pbs-batch-v1");
    EXPECT_EQ(v.find("config")->find("workload")->asString(), "pi");
    EXPECT_TRUE(v.find("config")->find("pbs")->asBool());
    const auto *runs = v.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->items.size(), 3u);
    EXPECT_EQ(runs->items[0].find("seed")->asU64(), 12345u);
    const auto *stats =
        runs->items[0].find("result")->find("stats");
    ASSERT_NE(stats, nullptr);
    EXPECT_GT(stats->find("instructions")->asU64(), 0u);
}

}  // namespace
