/**
 * @file
 * Tests for the unified `pbs_sim` driver: CLI parsing, workload and
 * predictor selection, and batch determinism (a fixed seed yields
 * bit-identical statistics across runs and across thread counts).
 */

#include <gtest/gtest.h>

#include "driver/options.hh"
#include "driver/reports.hh"
#include "driver/runner.hh"

namespace {

using namespace pbs;
using driver::DriverOptions;
using driver::parseArgs;

// --- CLI parsing -----------------------------------------------------

TEST(DriverOptions, DefaultsRequireWorkloadOrReport)
{
    auto r = parseArgs({});
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.error.find("required"), std::string::npos);
}

TEST(DriverOptions, ParsesFullWorkloadInvocation)
{
    auto r = parseArgs({"--workload", "pi", "--predictor", "tage_scl",
                        "--seeds", "8", "--jobs", "4"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.opts.workload, "pi");
    EXPECT_EQ(r.opts.predictor, "tage-sc-l");  // canonicalized
    EXPECT_EQ(r.opts.seeds, 8u);
    EXPECT_EQ(r.opts.jobs, 4u);
    EXPECT_EQ(r.opts.seed, 12345u);            // default base seed
    EXPECT_FALSE(r.opts.pbs);
    EXPECT_FALSE(r.opts.functional);
}

TEST(DriverOptions, EqualsSyntaxAndFlags)
{
    auto r = parseArgs({"--workload=pi", "--predictor=tournament",
                        "--pbs", "--functional", "--wide",
                        "--scale=100", "--seed=7", "--div=4",
                        "--no-stall", "--no-context", "--no-guard"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_TRUE(r.opts.pbs);
    EXPECT_TRUE(r.opts.functional);
    EXPECT_TRUE(r.opts.wide);
    EXPECT_EQ(r.opts.scale, 100u);
    EXPECT_EQ(r.opts.seed, 7u);
    EXPECT_EQ(r.opts.divisor, 4u);
    EXPECT_TRUE(r.opts.noStall);
    EXPECT_TRUE(r.opts.noContext);
    EXPECT_TRUE(r.opts.noGuard);
}

TEST(DriverOptions, RejectsUnknownWorkloadPredictorAndOption)
{
    EXPECT_FALSE(parseArgs({"--workload", "nonesuch"}).ok);
    EXPECT_FALSE(parseArgs({"--workload", "pi",
                            "--predictor", "nonesuch"}).ok);
    EXPECT_FALSE(parseArgs({"--workload", "pi", "--frobnicate"}).ok);
    EXPECT_FALSE(parseArgs({"--workload", "pi", "--jobs", "0"}).ok);
    EXPECT_FALSE(parseArgs({"--workload", "pi", "--seeds", "x"}).ok);
}

TEST(DriverOptions, WorkloadAndReportAreExclusive)
{
    EXPECT_FALSE(parseArgs({"--workload", "pi",
                            "--report", "fig07"}).ok);
    EXPECT_TRUE(parseArgs({"--report", "fig07"}).ok);
}

TEST(DriverOptions, PositionalBenchmarkName)
{
    auto r = parseArgs({"pi", "--pbs"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.opts.workload, "pi");
}

TEST(DriverOptions, VariantSelection)
{
    EXPECT_EQ(parseArgs({"pi", "--variant=marked"}).opts.variant,
              workloads::Variant::Marked);
    EXPECT_EQ(parseArgs({"dop", "--variant=predicated"}).opts.variant,
              workloads::Variant::Predicated);
    EXPECT_EQ(parseArgs({"dop", "--variant=cfd"}).opts.variant,
              workloads::Variant::Cfd);
    EXPECT_FALSE(parseArgs({"pi", "--variant=bogus"}).ok);
}

TEST(DriverOptions, CanonicalPredictorAliases)
{
    EXPECT_EQ(driver::canonicalPredictor("tage_scl"), "tage-sc-l");
    EXPECT_EQ(driver::canonicalPredictor("TAGE-SC-L"), "tage-sc-l");
    EXPECT_EQ(driver::canonicalPredictor("tagescl"), "tage-sc-l");
    EXPECT_EQ(driver::canonicalPredictor("tournament"), "tournament");
    EXPECT_EQ(driver::canonicalPredictor("tour"), "tournament");
    EXPECT_EQ(driver::canonicalPredictor("bimodal"), "bimodal");
    EXPECT_EQ(driver::canonicalPredictor("nonesuch"), "");
}

TEST(DriverOptions, CoreConfigReflectsOptions)
{
    auto r = parseArgs({"pi", "--pbs", "--wide", "--no-context"});
    ASSERT_TRUE(r.ok) << r.error;
    auto cfg = driver::coreConfig(r.opts);
    EXPECT_EQ(cfg.width, 8u);
    EXPECT_EQ(cfg.robSize, 256u);
    EXPECT_TRUE(cfg.pbsEnabled);
    EXPECT_FALSE(cfg.pbs.contextSupport);
    EXPECT_TRUE(cfg.pbs.stallOnBusy);
    EXPECT_EQ(cfg.mode, cpu::SimMode::Timing);

    auto f = parseArgs({"pi", "--functional"});
    EXPECT_EQ(driver::coreConfig(f.opts).mode, cpu::SimMode::Functional);
}

TEST(DriverOptions, WorkloadParamsScaleAndDivisor)
{
    const auto &b = workloads::benchmarkByName("pi");
    auto r = parseArgs({"pi", "--div", "10"});
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(driver::workloadParams(r.opts, 1).scale,
              std::max<uint64_t>(1, b.defaultScale / 10));

    auto s = parseArgs({"pi", "--scale", "42"});
    EXPECT_EQ(driver::workloadParams(s.opts, 1).scale, 42u);
}

// --- Report registry -------------------------------------------------

TEST(DriverReports, RegistryHasAllHarnesses)
{
    const char *expected[] = {"fig01", "fig06", "fig07", "fig08",
                              "fig09", "table1", "table2", "table3",
                              "table4", "ablation"};
    const auto &reports = driver::allReports();
    for (const char *name : expected) {
        bool found = false;
        for (const auto &rep : reports)
            found = found || rep.name == name;
        EXPECT_TRUE(found) << "missing report " << name;
    }
    EXPECT_EQ(driver::runReport("nonesuch", 1), 2);
}

// --- Batch determinism -----------------------------------------------

DriverOptions
tinyBatch(unsigned seeds, unsigned jobs)
{
    auto r = parseArgs({"--workload", "pi", "--functional", "--pbs",
                        "--scale", "2000",
                        "--seeds", std::to_string(seeds),
                        "--jobs", std::to_string(jobs)});
    EXPECT_TRUE(r.ok) << r.error;
    return r.opts;
}

void
expectIdentical(const std::vector<driver::SeedResult> &a,
                const std::vector<driver::SeedResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].seed, b[i].seed);
        const auto &sa = a[i].run.stats, &sb = b[i].run.stats;
        EXPECT_EQ(sa.instructions, sb.instructions);
        EXPECT_EQ(sa.cycles, sb.cycles);
        EXPECT_EQ(sa.branches, sb.branches);
        EXPECT_EQ(sa.probBranches, sb.probBranches);
        EXPECT_EQ(sa.mispredicts, sb.mispredicts);
        EXPECT_EQ(sa.steeredBranches, sb.steeredBranches);
        ASSERT_EQ(a[i].run.outputs.size(), b[i].run.outputs.size());
        for (size_t j = 0; j < a[i].run.outputs.size(); j++) {
            // Bit-identical, not just approximately equal.
            EXPECT_EQ(a[i].run.outputs[j], b[i].run.outputs[j]);
        }
    }
}

TEST(DriverBatch, FixedSeedIsBitIdenticalAcrossRuns)
{
    auto opts = tinyBatch(3, 1);
    expectIdentical(driver::runBatch(opts), driver::runBatch(opts));
}

TEST(DriverBatch, Jobs1AndJobs4AreBitIdentical)
{
    expectIdentical(driver::runBatch(tinyBatch(8, 1)),
                    driver::runBatch(tinyBatch(8, 4)));
}

TEST(DriverBatch, SeedsAreConsecutiveFromBase)
{
    auto opts = tinyBatch(4, 2);
    opts.seed = 100;
    auto rs = driver::runBatch(opts);
    ASSERT_EQ(rs.size(), 4u);
    for (size_t i = 0; i < rs.size(); i++) {
        EXPECT_EQ(rs[i].seed, 100u + i);
        EXPECT_GT(rs[i].run.stats.instructions, 0u);
    }
}

TEST(DriverBatch, MatchesDirectHarnessRun)
{
    // The driver's single-run stats must equal a direct runSim with the
    // equivalent config (the bench harnesses' code path).
    auto r = parseArgs({"--workload", "pi", "--functional",
                        "--predictor", "tage_scl", "--scale", "2000"});
    ASSERT_TRUE(r.ok) << r.error;
    auto batch = driver::runBatch(r.opts);
    ASSERT_EQ(batch.size(), 1u);

    const auto &b = workloads::benchmarkByName("pi");
    workloads::WorkloadParams p;
    p.seed = 12345;
    p.scale = 2000;
    auto direct =
        driver::runSim(b, p, driver::functionalConfig("tage-sc-l",
                                                      false));
    EXPECT_EQ(batch[0].run.stats.instructions,
              direct.stats.instructions);
    EXPECT_EQ(batch[0].run.stats.mispredicts, direct.stats.mispredicts);
    EXPECT_EQ(batch[0].run.outputs, direct.outputs);
}

TEST(DriverBatch, FormatBatchMentionsEverySeed)
{
    auto opts = tinyBatch(3, 1);
    opts.seed = 500;
    auto out = driver::formatBatch(opts, driver::runBatch(opts));
    EXPECT_NE(out.find("500"), std::string::npos);
    EXPECT_NE(out.find("501"), std::string::npos);
    EXPECT_NE(out.find("502"), std::string::npos);
    EXPECT_NE(out.find("ipc"), std::string::npos);
}

}  // namespace
