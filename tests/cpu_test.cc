/**
 * @file
 * Core tests: functional semantics of every opcode class, call/ret,
 * memory, and first-order timing properties of the OoO model (width,
 * dependence chains, ROB, misprediction penalty, PBS steering).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "rng/isa_emit.hh"

namespace {

using namespace pbs;
using isa::Assembler;
using isa::CmpOp;
using isa::Program;
using isa::REG_ZERO;

cpu::CoreConfig
timingConfig(const std::string &pred = "perfect")
{
    cpu::CoreConfig cfg;
    cfg.predictor = pred;
    return cfg;
}

cpu::Core
runProgram(const Program &prog, const cpu::CoreConfig &cfg)
{
    cpu::Core core(prog, cfg);
    core.run();
    EXPECT_TRUE(core.halted());
    return core;
}

TEST(CoreFunctional, IntegerArithmetic)
{
    Assembler as;
    as.ldi(3, 20);
    as.ldi(4, 6);
    as.add(5, 3, 4);    // 26
    as.sub(6, 3, 4);    // 14
    as.mul(7, 3, 4);    // 120
    as.div(8, 3, 4);    // 3
    as.rem(9, 3, 4);    // 2
    as.ldi(10, -20);
    as.div(11, 10, 4);  // -3 (C-style truncation toward zero)
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(5), 26u);
    EXPECT_EQ(core.reg(6), 14u);
    EXPECT_EQ(core.reg(7), 120u);
    EXPECT_EQ(core.reg(8), 3u);
    EXPECT_EQ(core.reg(9), 2u);
    EXPECT_EQ(int64_t(core.reg(11)), -3);
}

TEST(CoreFunctional, DivisionByZeroYieldsZero)
{
    Assembler as;
    as.ldi(3, 42);
    as.div(4, 3, REG_ZERO);
    as.rem(5, 3, REG_ZERO);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(4), 0u);
    EXPECT_EQ(core.reg(5), 0u);
}

TEST(CoreFunctional, LogicAndShifts)
{
    Assembler as;
    as.ldi(3, 0b1100);
    as.ldi(4, 0b1010);
    as.and_(5, 3, 4);
    as.or_(6, 3, 4);
    as.xor_(7, 3, 4);
    as.slli(8, 3, 2);
    as.srli(9, 3, 2);
    as.ldi(10, -8);
    as.srai(11, 10, 1);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(5), 0b1000u);
    EXPECT_EQ(core.reg(6), 0b1110u);
    EXPECT_EQ(core.reg(7), 0b0110u);
    EXPECT_EQ(core.reg(8), 0b110000u);
    EXPECT_EQ(core.reg(9), 0b11u);
    EXPECT_EQ(int64_t(core.reg(11)), -4);
}

TEST(CoreFunctional, RegisterZeroIsHardwired)
{
    Assembler as;
    as.ldi(REG_ZERO, 55);
    as.addi(3, REG_ZERO, 7);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(REG_ZERO), 0u);
    EXPECT_EQ(core.reg(3), 7u);
}

TEST(CoreFunctional, FloatingPoint)
{
    Assembler as;
    as.ldf(3, 2.25);
    as.ldf(4, 4.0);
    as.fadd(5, 3, 4);
    as.fmul(6, 3, 4);
    as.fdiv(7, 3, 4);
    as.fsqrt(8, 4);
    as.fneg(9, 3);
    as.fmin(10, 3, 4);
    as.fmax(11, 3, 4);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_DOUBLE_EQ(core.regDouble(5), 6.25);
    EXPECT_DOUBLE_EQ(core.regDouble(6), 9.0);
    EXPECT_DOUBLE_EQ(core.regDouble(7), 0.5625);
    EXPECT_DOUBLE_EQ(core.regDouble(8), 2.0);
    EXPECT_DOUBLE_EQ(core.regDouble(9), -2.25);
    EXPECT_DOUBLE_EQ(core.regDouble(10), 2.25);
    EXPECT_DOUBLE_EQ(core.regDouble(11), 4.0);
}

TEST(CoreFunctional, Transcendentals)
{
    Assembler as;
    as.ldf(3, 1.0);
    as.fexp(4, 3);
    as.flog(5, 4);
    as.ldf(6, 0.0);
    as.fsin(7, 6);
    as.fcos(8, 6);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_DOUBLE_EQ(core.regDouble(4), std::exp(1.0));
    EXPECT_DOUBLE_EQ(core.regDouble(5), 1.0);
    EXPECT_DOUBLE_EQ(core.regDouble(7), 0.0);
    EXPECT_DOUBLE_EQ(core.regDouble(8), 1.0);
}

TEST(CoreFunctional, Conversions)
{
    Assembler as;
    as.ldi(3, -7);
    as.i2f(4, 3);
    as.ldf(5, 3.9);
    as.f2i(6, 5);
    as.ldf(7, -3.9);
    as.f2i(8, 7);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_DOUBLE_EQ(core.regDouble(4), -7.0);
    EXPECT_EQ(int64_t(core.reg(6)), 3);    // trunc toward zero
    EXPECT_EQ(int64_t(core.reg(8)), -3);
}

TEST(CoreFunctional, CompareAndSelect)
{
    Assembler as;
    as.ldi(3, 5);
    as.ldi(4, 9);
    as.cmp(CmpOp::LT, 5, 3, 4);
    as.cmp(CmpOp::GT, 6, 3, 4);
    as.ldi(7, 100);
    as.ldi(8, 200);
    as.sel(9, 5, 7, 8);
    as.sel(10, 6, 7, 8);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(5), 1u);
    EXPECT_EQ(core.reg(6), 0u);
    EXPECT_EQ(core.reg(9), 100u);
    EXPECT_EQ(core.reg(10), 200u);
}

TEST(CoreFunctional, MemoryAndDataSegment)
{
    Assembler as;
    as.data64(0x1000, 0xdeadbeefcafef00dull);
    as.ldi(3, 0x1000);
    as.ld(4, 3, 0);
    as.st(3, 4, 8);
    as.ld(5, 3, 8);
    as.ldb(6, 3, 0);
    as.ldi(7, 0xAB);
    as.stb(3, 7, 100);
    as.ldb(8, 3, 100);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(4), 0xdeadbeefcafef00dull);
    EXPECT_EQ(core.reg(5), 0xdeadbeefcafef00dull);
    EXPECT_EQ(core.reg(6), 0x0dull);
    EXPECT_EQ(core.reg(8), 0xABull);
}

TEST(CoreFunctional, LoopAndBranches)
{
    Assembler as;
    as.ldi(3, 10);   // counter
    as.ldi(4, 0);    // sum
    as.label("loop");
    as.add(4, 4, 3);
    as.addi(3, 3, -1);
    as.jnz(3, "loop");
    as.halt();
    auto core = runProgram(as.finish(), timingConfig("tournament"));
    EXPECT_EQ(core.reg(4), 55u);
    EXPECT_EQ(core.stats().branches, 10u);
}

TEST(CoreFunctional, CallAndReturn)
{
    Assembler as;
    as.ldi(3, 5);
    as.call("double_it");
    as.call("double_it");
    as.halt();
    as.label("double_it");
    as.add(3, 3, 3);
    as.ret();
    auto core = runProgram(as.finish(), timingConfig());
    EXPECT_EQ(core.reg(3), 20u);
}

TEST(CoreTiming, IpcBoundedByWidth)
{
    // A long stream of independent single-cycle ops cannot exceed the
    // machine width in IPC, but should get close.
    Assembler as;
    for (int i = 0; i < 4000; i++)
        as.addi(3 + (i % 8), REG_ZERO, i);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    double ipc = core.stats().ipc();
    EXPECT_LE(ipc, 4.05);
    EXPECT_GE(ipc, 2.0);
}

TEST(CoreTiming, DependenceChainSerializes)
{
    // fsqrt chain: each depends on the previous -> IPC well below 1.
    Assembler as;
    as.ldf(3, 2.0);
    for (int i = 0; i < 500; i++)
        as.fadd(3, 3, 3);
    as.halt();
    auto core = runProgram(as.finish(), timingConfig());
    // fpAlu latency is 3: chain IPC ~ 1/3.
    EXPECT_LT(core.stats().ipc(), 0.6);
}

TEST(CoreTiming, MispredictionsCostCycles)
{
    // Data-dependent unpredictable branches with a random predictor
    // should run much slower than with a perfect predictor.
    auto build = [] {
        Assembler as;
        rng::XorShiftEmitter xs(3, 4, 5, 6);
        xs.setup(as, 99);
        as.ldi(10, 4000);
        as.ldi(11, 0);
        as.label("loop");
        xs.emitNextU64(as, 7);
        as.andi(7, 7, 1);
        as.jnz(7, "taken");
        as.addi(11, 11, 1);
        as.label("taken");
        as.addi(10, 10, -1);
        as.jnz(10, "loop");
        as.halt();
        return as.finish();
    };
    auto perfect = runProgram(build(), timingConfig("perfect"));
    auto random = runProgram(build(), timingConfig("random"));
    EXPECT_EQ(perfect.stats().mispredicts, 0u);
    EXPECT_GT(random.stats().mispredicts,
              random.stats().branches / 3);
    EXPECT_GT(random.stats().cycles, perfect.stats().cycles * 3 / 2);
}

TEST(CoreTiming, WiderCoreIsFaster)
{
    Assembler as;
    for (int i = 0; i < 2000; i++)
        as.addi(3 + (i % 16), REG_ZERO, i);
    as.halt();
    Program prog = as.finish();

    auto narrow = runProgram(prog, cpu::CoreConfig::fourWide());
    auto wide = runProgram(prog, cpu::CoreConfig::eightWide());
    EXPECT_GT(wide.stats().ipc(), narrow.stats().ipc() * 1.4);
}

TEST(CoreTiming, CfdJnzNeverMispredicts)
{
    Assembler as;
    rng::XorShiftEmitter xs(3, 4, 5, 6);
    xs.setup(as, 123);
    as.ldi(10, 2000);
    as.ldi(11, 0);
    as.label("loop");
    xs.emitNextU64(as, 7);
    as.andi(7, 7, 1);
    as.cfdJnz(7, "taken");
    as.addi(11, 11, 1);
    as.label("taken");
    as.addi(10, 10, -1);
    as.jnz(10, "loop");
    as.halt();
    auto core = runProgram(as.finish(), timingConfig("tournament"));
    // Only the loop-closing branch can mispredict (once, at exit).
    EXPECT_LE(core.stats().mispredicts, 4u);
}

TEST(CoreLimits, MaxInstructionsStopsRunaway)
{
    Assembler as;
    as.label("forever");
    as.jmp("forever");
    as.halt();
    cpu::CoreConfig cfg = timingConfig();
    cfg.maxInstructions = 1000;
    cpu::Core core(as.finish(), cfg);
    core.run();
    EXPECT_FALSE(core.halted());
    EXPECT_EQ(core.stats().instructions, 1000u);
}

TEST(CoreLimits, StepExecutesExactly)
{
    Assembler as;
    for (int i = 0; i < 100; i++)
        as.nop();
    as.halt();
    cpu::Core core(as.finish(), timingConfig());
    EXPECT_EQ(core.step(40), 40u);
    EXPECT_FALSE(core.halted());
    EXPECT_EQ(core.step(1000), 61u);  // 60 nops + halt
    EXPECT_TRUE(core.halted());
}

}  // namespace
