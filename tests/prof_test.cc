/**
 * @file
 * Tests for the analysis library behind `pbs_prof` (src/prof): span-tree
 * reconstruction from flat pbs-trace-v1 events, per-phase self/child
 * aggregation, critical-path extraction, folded-stack output, worker
 * utilization, and the metrics diff (correctness vs perf drift, the
 * regression gate's noise floor). Inputs are hand-built JSON documents
 * with exact timestamps so every expectation is deterministic.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "prof/prof.hh"

namespace {

using namespace pbs;

/** Build a pbs-trace-v1 document from (tid, cat, name, ts, dur) rows. */
struct TraceBuilder
{
    std::string events;

    TraceBuilder &meta(unsigned tid, const std::string &threadName)
    {
        addComma();
        events += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                  ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                  threadName + "\"}}";
        return *this;
    }

    TraceBuilder &span(unsigned tid, const std::string &cat,
                       const std::string &name, double ts, double dur)
    {
        addComma();
        char buf[256];
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"X\",\"pid\":1,\"tid\":%u,\"cat\":\"%s\","
                      "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                      tid, cat.c_str(), name.c_str(), ts, dur);
        events += buf;
        return *this;
    }

    std::string str() const
    {
        return "{\"schema\":\"pbs-trace-v1\",\"displayTimeUnit\":\"ms\","
               "\"traceEvents\":[" +
               events + "]}";
    }

  private:
    void addComma()
    {
        if (!events.empty())
            events += ",";
    }
};

/** Minimal pbs-metrics-v1 document from pre-rendered section bodies. */
std::string
metricsDoc(const std::string &counters, const std::string &gauges,
           const std::string &timings, const std::string &pool = "")
{
    return "{\"schema\":\"pbs-metrics-v1\",\"counters\":{" + counters +
           "},\"gauges\":{" + gauges + "},\"timings\":{" + timings +
           "},\"pool\":{" + pool + "}}";
}

// --- trace parsing and tree reconstruction ---------------------------

TEST(ProfTrace, RebuildsNestingByContainment)
{
    // main: sweep[0,100) > point[10,50) > measure[15,20); then a
    // sibling point[70,20). Worker track has one root span.
    const std::string json = TraceBuilder()
                                 .meta(0, "main")
                                 .meta(1, "sweep worker 1")
                                 .span(0, "sweep", "sweep", 0, 100)
                                 .span(0, "point", "pi", 10, 50)
                                 .span(0, "measure", "measure", 15, 20)
                                 .span(0, "point", "dop", 70, 20)
                                 .span(1, "steal", "steal", 5, 40)
                                 .str();

    prof::Trace t = prof::parseTrace(json);
    ASSERT_EQ(t.spans.size(), 5u);
    EXPECT_EQ(t.trackName(0), "main");
    EXPECT_EQ(t.trackName(1), "sweep worker 1");
    EXPECT_EQ(t.trackName(7), "track7");  // unnamed fallback

    // Roots: sweep on track 0, steal on track 1.
    ASSERT_EQ(t.roots.size(), 2u);
    const prof::Span &sweep = t.spans[t.roots[0]];
    EXPECT_EQ(sweep.phase, "sweep");
    EXPECT_EQ(sweep.parent, -1);
    ASSERT_EQ(sweep.children.size(), 2u);

    const prof::Span &point = t.spans[sweep.children[0]];
    EXPECT_EQ(point.name, "pi");
    EXPECT_EQ(&t.spans[point.parent], &sweep);
    ASSERT_EQ(point.children.size(), 1u);
    EXPECT_EQ(t.spans[point.children[0]].phase, "measure");

    // childUs / selfUs: sweep holds 50+20 of children; point holds 20.
    EXPECT_DOUBLE_EQ(sweep.childUs, 70.0);
    EXPECT_DOUBLE_EQ(sweep.selfUs(), 30.0);
    EXPECT_DOUBLE_EQ(point.selfUs(), 30.0);
    EXPECT_DOUBLE_EQ(t.endUs(), 100.0);
}

TEST(ProfTrace, EqualStartNestsLongerSpanOutside)
{
    // Two spans starting at the same instant: the longer one is the
    // parent (sorted start asc, dur desc).
    const std::string json = TraceBuilder()
                                 .span(0, "interval", "interval", 10, 50)
                                 .span(0, "warmup", "warmup", 10, 20)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    ASSERT_EQ(t.roots.size(), 1u);
    const prof::Span &outer = t.spans[t.roots[0]];
    EXPECT_EQ(outer.phase, "interval");
    ASSERT_EQ(outer.children.size(), 1u);
    EXPECT_EQ(t.spans[outer.children[0]].phase, "warmup");
}

TEST(ProfTrace, MalformedInputThrows)
{
    EXPECT_THROW(prof::parseTrace("not json"), std::runtime_error);
    EXPECT_THROW(prof::parseTrace("{\"schema\":\"other-v1\"}"),
                 std::runtime_error);
    EXPECT_THROW(prof::parseTrace("{\"schema\":\"pbs-trace-v1\"}"),
                 std::runtime_error);
    // X event without a cat (phase) is a schema violation.
    EXPECT_THROW(
        prof::parseTrace("{\"schema\":\"pbs-trace-v1\",\"traceEvents\":"
                         "[{\"ph\":\"X\",\"tid\":0,\"name\":\"x\","
                         "\"ts\":0,\"dur\":1}]}"),
        std::runtime_error);
}

// --- aggregations ----------------------------------------------------

TEST(ProfAgg, PhaseAggregateSortsByTotalAndSumsSelf)
{
    const std::string json = TraceBuilder()
                                 .span(0, "sweep", "sweep", 0, 100)
                                 .span(0, "point", "a", 10, 30)
                                 .span(0, "point", "b", 50, 40)
                                 .span(1, "point", "c", 0, 25)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    std::vector<prof::PhaseAgg> phases = prof::phaseAggregate(t);

    ASSERT_EQ(phases.size(), 2u);
    EXPECT_EQ(phases[0].phase, "sweep");  // 100 > 95
    EXPECT_EQ(phases[1].phase, "point");
    EXPECT_EQ(phases[1].count, 3u);
    EXPECT_DOUBLE_EQ(phases[1].totalUs, 95.0);
    // Leaf spans: all time is self time.
    EXPECT_DOUBLE_EQ(phases[1].selfUs, 95.0);
    EXPECT_DOUBLE_EQ(phases[0].selfUs, 30.0);
    EXPECT_DOUBLE_EQ(phases[0].childUs(), 70.0);

    // Σ self over phases == Σ busy (root) time: 100 + 25.
    double self = 0;
    for (const prof::PhaseAgg &a : phases)
        self += a.selfUs;
    EXPECT_DOUBLE_EQ(self, 125.0);
}

TEST(ProfAgg, CriticalPathDescendsLongestChild)
{
    const std::string json = TraceBuilder()
                                 .span(0, "sweep", "sweep", 0, 100)
                                 .span(0, "point", "small", 5, 10)
                                 .span(0, "point", "big", 20, 60)
                                 .span(0, "measure", "measure", 30, 40)
                                 .span(1, "task", "short-root", 0, 50)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    std::vector<prof::CritStep> path = prof::criticalPath(t);

    ASSERT_EQ(path.size(), 3u);  // sweep -> big point -> measure
    EXPECT_EQ(path[0].phase, "sweep");
    EXPECT_EQ(path[1].name, "big");
    EXPECT_EQ(path[2].phase, "measure");
    EXPECT_DOUBLE_EQ(path[2].durUs, 40.0);
    EXPECT_DOUBLE_EQ(path[2].selfUs, 40.0);
}

TEST(ProfAgg, FoldedStacksWeightsAreSelfNanoseconds)
{
    const std::string json = TraceBuilder()
                                 .meta(0, "main")
                                 .span(0, "sweep", "sweep", 0, 100)
                                 .span(0, "point", "pi scale 2", 10, 40)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    const std::string folded = prof::foldedStacks(t);

    // Lexicographically sorted; labels sanitized (spaces -> '_');
    // weights in ns (µs * 1000) and equal to self time.
    EXPECT_EQ(folded,
              "main;sweep 60000\n"
              "main;sweep;point:pi_scale_2 40000\n");
}

TEST(ProfAgg, FoldedStacksOmitZeroSelfFrames)
{
    // Parent fully covered by its child: no line for the parent.
    const std::string json = TraceBuilder()
                                 .span(0, "interval", "interval", 0, 50)
                                 .span(0, "measure", "measure", 0, 50)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    EXPECT_EQ(prof::foldedStacks(t), "track0;interval;measure 50000\n");
}

TEST(ProfAgg, WorkerUtilizationMergesOverlappingRoots)
{
    // Track 0 busy [0,40)∪[30,60) = [0,60); track 1 busy [50,100).
    const std::string json = TraceBuilder()
                                 .meta(1, "worker")
                                 .span(0, "task", "a", 0, 40)
                                 .span(0, "task", "b", 30, 30)
                                 .span(1, "task", "c", 50, 50)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    std::vector<prof::TrackUtil> util = prof::workerUtilization(t, 10);

    ASSERT_EQ(util.size(), 2u);
    EXPECT_EQ(util[0].track, 0u);
    EXPECT_DOUBLE_EQ(util[0].busyUs, 60.0);
    EXPECT_DOUBLE_EQ(util[0].firstUs, 0.0);
    EXPECT_DOUBLE_EQ(util[0].lastUs, 60.0);
    EXPECT_DOUBLE_EQ(util[0].util, 1.0);

    // Timeline spans the trace [0,100): first 6 buckets solid, rest idle.
    ASSERT_EQ(util[0].timeline.size(), 10u);
    EXPECT_EQ(util[0].timeline, "######    ");
    EXPECT_EQ(util[1].name, "worker");
    EXPECT_EQ(util[1].timeline, "     #####");
    EXPECT_DOUBLE_EQ(util[1].busyUs, 50.0);
}

TEST(ProfAgg, ReportTextNamesEverySection)
{
    const std::string json = TraceBuilder()
                                 .meta(0, "main")
                                 .span(0, "sweep", "sweep", 0, 100)
                                 .span(0, "point", "pi", 10, 40)
                                 .str();
    prof::Trace t = prof::parseTrace(json);
    const std::string metrics = metricsDoc(
        "\"exp.computed\":4", "", "\"phase_ns.point\":40000000");
    const std::string report = prof::reportText(t, metrics, 12);

    EXPECT_NE(report.find("per-phase time"), std::string::npos);
    EXPECT_NE(report.find("workers"), std::string::npos);
    EXPECT_NE(report.find("critical path"), std::string::npos);
    EXPECT_NE(report.find("deterministic counters: 1"), std::string::npos);
    EXPECT_NE(report.find("sweep"), std::string::npos);
}

// --- metrics diff ----------------------------------------------------

TEST(ProfDiff, IdenticalRunsShowNoDrift)
{
    const std::string doc =
        metricsDoc("\"exp.computed\":7,\"insts.measure\":123",
                   "\"jobs\":4", "\"phase_ns.measure\":5000000",
                   "\"steals\":3");
    prof::MetricsDiff d = prof::diffMetrics(doc, doc);
    EXPECT_TRUE(d.deterministic.empty());
    EXPECT_TRUE(d.pool.empty());
    ASSERT_EQ(d.phases.size(), 1u);
    EXPECT_EQ(d.phases[0].deltaNs, 0);
    EXPECT_EQ(prof::regressionCount(d, 0.2), 0u);
}

TEST(ProfDiff, CounterAndGaugeDeltasAreCorrectnessDrift)
{
    const std::string base = metricsDoc(
        "\"exp.computed\":7,\"exp.memo_hits\":2", "\"jobs\":4", "");
    const std::string cur = metricsDoc(
        "\"exp.computed\":9,\"exp.reused\":1", "\"jobs\":4", "");
    prof::MetricsDiff d = prof::diffMetrics(base, cur);

    // memo_hits vanished, computed moved, reused appeared; jobs equal.
    ASSERT_EQ(d.deterministic.size(), 3u);
    EXPECT_EQ(d.deterministic[0].name, "counter:exp.computed");
    EXPECT_DOUBLE_EQ(d.deterministic[0].delta(), 2.0);
    EXPECT_EQ(d.deterministic[1].name, "counter:exp.memo_hits");
    EXPECT_DOUBLE_EQ(d.deterministic[1].cur, 0.0);
    EXPECT_EQ(d.deterministic[2].name, "counter:exp.reused");
}

TEST(ProfDiff, PhasesRankedByAbsoluteDelta)
{
    const std::string base = metricsDoc(
        "", "",
        "\"phase_ns.ff\":10000000,\"phase_ns.measure\":50000000,"
        "\"phase_ns.warmup\":20000000");
    const std::string cur = metricsDoc(
        "", "",
        "\"phase_ns.ff\":11000000,\"phase_ns.measure\":80000000,"
        "\"phase_ns.warmup\":15000000");
    prof::MetricsDiff d = prof::diffMetrics(base, cur);

    ASSERT_EQ(d.phases.size(), 3u);
    EXPECT_EQ(d.phases[0].phase, "measure");  // |+30 ms|
    EXPECT_EQ(d.phases[1].phase, "warmup");   // |-5 ms|
    EXPECT_EQ(d.phases[2].phase, "ff");       // |+1 ms|
    EXPECT_EQ(d.phases[0].deltaNs, 30000000);
    EXPECT_NEAR(d.phases[0].pct, 0.6, 1e-12);
    EXPECT_EQ(d.phases[1].deltaNs, -5000000);

    // measure regressed 60% and warmup improved: one gated regression.
    EXPECT_EQ(prof::regressionCount(d, 0.2), 1u);
    EXPECT_EQ(prof::regressionCount(d, 0.7), 0u);
}

TEST(ProfDiff, GateNoiseFloorIgnoresTinyAndNewPhases)
{
    // ff: huge relative regression but only 0.5 ms of base -> exempt.
    // cache_io: new phase (base 0) -> pct is +inf but exempt.
    // measure: big base, delta under 1 ms -> exempt.
    const std::string base = metricsDoc(
        "", "", "\"phase_ns.ff\":500000,\"phase_ns.measure\":100000000");
    const std::string cur = metricsDoc(
        "", "",
        "\"phase_ns.ff\":2000000,\"phase_ns.measure\":100900000,"
        "\"phase_ns.cache_io\":50000000");
    prof::MetricsDiff d = prof::diffMetrics(base, cur);

    EXPECT_EQ(prof::regressionCount(d, 0.2), 0u);
    // The new phase is still reported (ranked first by |delta|)...
    EXPECT_EQ(d.phases[0].phase, "cache_io");
    EXPECT_TRUE(std::isinf(d.phases[0].pct));
    // ...and diffText marks it NEW, not REGRESSED.
    const std::string text = prof::diffText(d, "base", "cur", 0.2);
    EXPECT_NE(text.find("NEW"), std::string::npos);
    EXPECT_EQ(text.find("REGRESSED"), std::string::npos);
}

TEST(ProfDiff, DiffTextFlagsRegressionAndDrift)
{
    const std::string base = metricsDoc(
        "\"exp.computed\":7", "", "\"phase_ns.measure\":50000000");
    const std::string cur = metricsDoc(
        "\"exp.computed\":8", "", "\"phase_ns.measure\":80000000");
    prof::MetricsDiff d = prof::diffMetrics(base, cur);
    const std::string text = prof::diffText(d, "a.json", "b.json", 0.2);

    EXPECT_NE(text.find("counter:exp.computed"), std::string::npos);
    EXPECT_NE(text.find("REGRESSED"), std::string::npos);
    EXPECT_NE(text.find("a.json"), std::string::npos);

    // Identical-work diff renders the "none" marker instead.
    prof::MetricsDiff same = prof::diffMetrics(base, base);
    EXPECT_NE(prof::diffText(same, "a", "a", 0.2).find("none"),
              std::string::npos);
}

TEST(ProfDiff, MalformedMetricsThrow)
{
    const std::string good = metricsDoc("", "", "");
    EXPECT_THROW(prof::diffMetrics("nope", good), std::runtime_error);
    EXPECT_THROW(prof::diffMetrics(good, "{\"schema\":\"pbs-trace-v1\"}"),
                 std::runtime_error);
}

}  // namespace
