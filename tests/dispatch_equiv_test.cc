/**
 * @file
 * Differential harness for functional-mode dispatch: superblock
 * (threaded and portable backends) vs the reference opcode switch must
 * leave registers, memory, the prob-sequence counters and every shared
 * statistic bit-identical — on every registered workload, on fuzzed
 * programs from the property_test generator, on programs that branch
 * into the middle of would-be-fused runs, and at every step(n)
 * boundary. This suite is the safety gate for the superinstruction
 * optimisation (src/sampling/superblock.cc): any rewriting of the
 * instruction stream that is not exactly per-instruction equivalent
 * fails here before it can touch checkpoint capture.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "rng/rng.hh"
#include "sampling/functional.hh"
#include "sampling/superblock.hh"
#include "workloads/common.hh"

#include "support/random_program.hh"

namespace {

using namespace pbs;
using sampling::FuncDispatch;
using sampling::FunctionalEngine;
using sampling::SbHandler;
using sampling::SuperblockImage;
using testsupport::randomProgram;

constexpr FuncDispatch kSuperModes[] = {
    FuncDispatch::Superblock,
    FuncDispatch::SuperblockPortable,
};

/** Full architectural + statistics diff between two engines. */
void
expectSameState(const FunctionalEngine &ref, const FunctionalEngine &got,
                const std::string &what)
{
    const cpu::ArchState a = ref.saveArch();
    const cpu::ArchState b = got.saveArch();
    for (unsigned r = 0; r < isa::kNumRegs; r++)
        EXPECT_EQ(a.regs[r], b.regs[r]) << what << " r" << r;
    EXPECT_EQ(a.pc, b.pc) << what;
    EXPECT_EQ(a.halted, b.halted) << what;
    EXPECT_EQ(a.instructions, b.instructions) << what;
    ASSERT_EQ(a.probSeq.size(), b.probSeq.size()) << what;
    for (size_t i = 0; i < a.probSeq.size(); i++)
        EXPECT_EQ(a.probSeq[i], b.probSeq[i]) << what << " probSeq " << i;
    EXPECT_TRUE(a.mem.sameContents(b.mem)) << what;
    EXPECT_EQ(ref.stats().branches, got.stats().branches) << what;
    EXPECT_EQ(ref.stats().probBranches, got.stats().probBranches) << what;
}

/** Run @p prog to completion under every dispatch mode and diff. */
void
expectAllDispatchesAgree(const isa::Program &prog, const std::string &what)
{
    FunctionalEngine ref(prog, 0, FuncDispatch::Switch);
    ref.run();
    for (FuncDispatch mode : kSuperModes) {
        FunctionalEngine sb(prog, 0, mode);
        sb.run();
        expectSameState(
            ref, sb,
            what + " [" + sampling::funcDispatchName(mode) + "]");
    }
}

// ---------------------------------------------------------------------
// All registered workloads, three seeds each: end state bit-identical.
// ---------------------------------------------------------------------

class DispatchEquiv : public ::testing::TestWithParam<const char *> {};

TEST_P(DispatchEquiv, WorkloadEndStateBitIdentical)
{
    const auto &b = workloads::benchmarkByName(GetParam());
    for (uint64_t seed : {11u, 47u, 20260u}) {
        workloads::WorkloadParams p;
        p.seed = seed;
        p.scale = std::max<uint64_t>(1, b.defaultScale / 100);
        expectAllDispatchesAgree(
            b.build(p, workloads::Variant::Marked),
            std::string(GetParam()) + " seed " + std::to_string(seed));
    }
}

TEST_P(DispatchEquiv, BuilderCoversWholeImage)
{
    const auto &b = workloads::benchmarkByName(GetParam());
    workloads::WorkloadParams p;
    p.scale = std::max<uint64_t>(1, b.defaultScale / 100);
    FunctionalEngine eng(b.build(p, workloads::Variant::Marked));
    ASSERT_NE(eng.superblocks(), nullptr);
    const SuperblockImage &sb = *eng.superblocks();

    // Blocks tile the image: every instruction is in exactly one block.
    EXPECT_EQ(sb.buildStats().instructions, eng.image().size());
    EXPECT_GT(sb.buildStats().blocks, 0u);

    // Every branch target is a block leader (no branch can land inside
    // a fused run), and every block starts at its recorded index.
    const auto &ops = eng.image().ops();
    for (size_t pc = 0; pc < ops.size(); pc++) {
        if (ops[pc].flags & isa::DecodedOp::kHasTarget) {
            EXPECT_NE(sb.blockAt(ops[pc].target), SuperblockImage::kNoBlock)
                << "target of pc " << pc;
        }
        EXPECT_EQ(sb.blockAt(pc) != SuperblockImage::kNoBlock,
                  ops[pc].isLeader())
            << "pc " << pc;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, DispatchEquiv,
    ::testing::Values("dop", "greeks", "swaptions", "genetic", "photon",
                      "mc-integ", "pi", "bandit"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Fuzzed programs: the property_test generator, 60 rounds x 4 seeds
// (240 programs, >= the 200-program floor), plus randomized step(n)
// schedules so block-budget epilogues are hit at arbitrary offsets.
// ---------------------------------------------------------------------

class DispatchFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DispatchFuzz, RandomProgramsNeverDiverge)
{
    rng::XorShift64Star rng(GetParam());
    for (int round = 0; round < 60; round++) {
        const bool withProb = (rng.next() & 1) != 0;
        const isa::Program prog = randomProgram(rng, withProb);
        const std::string what = "seed " + std::to_string(GetParam()) +
                                 " round " + std::to_string(round);
        expectAllDispatchesAgree(prog, what);

        // Every 8th program: re-run in lockstep with a random step
        // schedule, checking state at every boundary (exact-count
        // stepping must hold mid-run, not just at halt).
        if (round % 8 != 0)
            continue;
        FunctionalEngine ref(prog, 0, FuncDispatch::Switch);
        FunctionalEngine sb(prog, 0, FuncDispatch::Superblock);
        while (!ref.halted()) {
            const uint64_t chunk = 1 + rng.next() % 37;
            const uint64_t dref = ref.step(chunk);
            const uint64_t dsb = sb.step(chunk);
            ASSERT_EQ(dref, dsb) << what;
            ASSERT_EQ(ref.pc(), sb.pc()) << what;
            ASSERT_EQ(ref.stats().instructions, sb.stats().instructions)
                << what;
        }
        expectSameState(ref, sb, what + " [stepped]");
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DispatchFuzz,
                         ::testing::Values(11, 42, 1234, 9999));

// ---------------------------------------------------------------------
// Branches into the middle of would-be-fused runs. The builder must
// split blocks at every branch target, so entering a run mid-way
// executes the exact per-instruction semantics.
// ---------------------------------------------------------------------

TEST(DispatchMidBlock, BranchIntoFusablePairRun)
{
    isa::Assembler a;
    a.ldi(3, 400);                          // counter
    a.ldi(10, int64_t(0x123456789abcdefULL));
    a.ldi(11, int64_t(0x2545f4914f6cdd1dULL));
    a.label("top");
    a.mul(10, 10, 11);                      // MUL,ADDI would fuse...
    a.addi(10, 10, 7);
    a.label("mid");                         // ...but "mid" splits here
    a.srli(12, 10, 9);                      // SRLI,XOR would fuse too
    a.xor_(10, 10, 12);
    a.andi(13, 3, 1);
    a.addi(3, 3, -1);
    a.jz(13, "even");
    a.jnz(3, "mid");                        // odd counter: enter mid-run
    a.label("even");
    a.jnz(3, "top");
    a.halt();
    expectAllDispatchesAgree(a.finish(), "mid-run pair entry");
}

TEST(DispatchMidBlock, BranchIntoXorshiftTriple)
{
    // Program layout (static): 0:ldi 1:ldi 2:srli 3:xor 4:slli("xmid")
    // 5:xor 6:srli 7:xor 8:andi 9:addi 10:jz 11:jnz->4 12:jnz->2 13:halt
    isa::Assembler a;
    a.ldi(3, 300);
    a.ldi(5, int64_t(0x9e3779b97f4a7c15ULL));
    a.label("loop");
    a.srli(6, 5, 12);                       // xorshift triple head
    a.xor_(5, 5, 6);
    a.label("xmid");                        // target inside the triple
    a.slli(6, 5, 25);
    a.xor_(5, 5, 6);
    a.srli(6, 5, 27);
    a.xor_(5, 5, 6);
    a.andi(7, 3, 3);
    a.addi(3, 3, -1);
    a.jz(7, "skip");
    a.jnz(3, "xmid");
    a.label("skip");
    a.jnz(3, "loop");
    a.halt();
    const isa::Program prog = a.finish();
    expectAllDispatchesAgree(prog, "mid-xorshift entry");

    // The leader at "xmid" (pc 4) must split the triple: a block starts
    // there and no F_XORSHIFT superop forms anywhere in this image.
    FunctionalEngine eng(prog);
    const SuperblockImage &sb = *eng.superblocks();
    EXPECT_NE(sb.blockAt(4), SuperblockImage::kNoBlock);
    for (const auto &sop : sb.sops())
        EXPECT_NE(sop.handler,
                  static_cast<uint16_t>(SbHandler::F_XORSHIFT));
}

TEST(DispatchMidBlock, UnbrokenXorshiftTripleDoesFuse)
{
    // Control case: the same rotation with no mid-run label fuses into
    // one F_XORSHIFT superop (the optimisation actually engages).
    isa::Assembler a;
    a.ldi(3, 300);
    a.ldi(5, int64_t(0x9e3779b97f4a7c15ULL));
    a.label("loop");
    a.srli(6, 5, 12);
    a.xor_(5, 5, 6);
    a.slli(6, 5, 25);
    a.xor_(5, 5, 6);
    a.srli(6, 5, 27);
    a.xor_(5, 5, 6);
    a.addi(3, 3, -1);
    a.jnz(3, "loop");
    a.halt();
    const isa::Program prog = a.finish();
    expectAllDispatchesAgree(prog, "unbroken xorshift");

    FunctionalEngine eng(prog);
    bool sawXorshift = false;
    bool sawFusedBackedge = false;
    for (const auto &sop : eng.superblocks()->sops()) {
        if (sop.handler == static_cast<uint16_t>(SbHandler::F_XORSHIFT))
            sawXorshift = true;
        if (sop.handler == static_cast<uint16_t>(SbHandler::T_ADDI_JNZ))
            sawFusedBackedge = true;
    }
    EXPECT_TRUE(sawXorshift);
    EXPECT_TRUE(sawFusedBackedge);
}

// ---------------------------------------------------------------------
// Exact step(n) boundaries: for every prefix length k, the superblock
// engine stops at exactly k instructions with the same state as the
// reference (block epilogues decompose to single steps).
// ---------------------------------------------------------------------

TEST(DispatchStepBoundary, EveryPrefixLengthIsExact)
{
    rng::XorShift64Star rng(7);
    const isa::Program prog = randomProgram(rng, true);
    for (uint64_t k = 1; k <= 48; k++) {
        FunctionalEngine ref(prog, 0, FuncDispatch::Switch);
        FunctionalEngine sb(prog, 0, FuncDispatch::Superblock);
        EXPECT_EQ(ref.step(k), k);
        EXPECT_EQ(sb.step(k), k);
        EXPECT_EQ(sb.stats().instructions, k);
        expectSameState(ref, sb, "prefix " + std::to_string(k));
    }
}

}  // namespace
