/**
 * @file
 * ISA tests: instruction properties, assembler label resolution,
 * program validation, and encode/decode round trips for both encoding
 * modes, including PBS-unaware (legacy) decoding.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/encoding.hh"

namespace {

using namespace pbs::isa;

TEST(OpcodeProps, ControlClassification)
{
    EXPECT_TRUE(isControl(Opcode::JMP));
    EXPECT_TRUE(isControl(Opcode::PROB_JMP));
    EXPECT_TRUE(isControl(Opcode::CFD_JNZ));
    EXPECT_TRUE(isControl(Opcode::RET));
    EXPECT_FALSE(isControl(Opcode::PROB_CMP));
    EXPECT_TRUE(isCondBranch(Opcode::JNZ));
    EXPECT_FALSE(isCondBranch(Opcode::JMP));
    EXPECT_TRUE(isProbOp(Opcode::PROB_CMP));
    EXPECT_TRUE(isProbOp(Opcode::PROB_JMP));
    EXPECT_FALSE(isProbOp(Opcode::CMP));
}

TEST(InstructionProps, SourceAndDestRegisters)
{
    Instruction add;
    add.op = Opcode::ADD;
    add.rd = 5;
    add.rs1 = 6;
    add.rs2 = 7;
    std::array<uint8_t, 3> srcs;
    EXPECT_EQ(add.sourceRegs(srcs), 2u);
    EXPECT_EQ(add.destReg(), 5);

    Instruction pcmp;
    pcmp.op = Opcode::PROB_CMP;
    pcmp.rd = 4;   // condition
    pcmp.rs1 = 8;  // probabilistic value
    pcmp.rs2 = 9;
    EXPECT_EQ(pcmp.sourceRegs(srcs), 2u);
    EXPECT_EQ(srcs[0], 8);
    EXPECT_EQ(srcs[1], 9);
    EXPECT_EQ(pcmp.probReg(), 8);

    Instruction pjmp;
    pjmp.op = Opcode::PROB_JMP;
    pjmp.rd = 8;
    pjmp.rs1 = 4;
    pjmp.imm = 10;
    EXPECT_EQ(pjmp.sourceRegs(srcs), 2u);
    EXPECT_EQ(pjmp.probReg(), 8);
    EXPECT_TRUE(pjmp.writesDest());

    Instruction store;
    store.op = Opcode::ST;
    store.rs1 = 3;
    store.rs2 = 4;
    EXPECT_FALSE(store.writesDest());
}

TEST(AssemblerTest, ForwardAndBackwardLabels)
{
    Assembler as;
    as.jmp("end");
    as.label("mid");
    as.addi(3, 3, 1);
    as.label("end");
    as.jmp("mid");
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p.insts[0].imm, 2);  // "end"
    EXPECT_EQ(p.insts[2].imm, 1);  // "mid"
}

TEST(AssemblerTest, UndefinedLabelThrows)
{
    Assembler as;
    as.jmp("nowhere");
    as.halt();
    EXPECT_THROW(as.finish(), std::invalid_argument);
}

TEST(AssemblerTest, DuplicateLabelThrows)
{
    Assembler as;
    as.label("a");
    EXPECT_THROW(as.label("a"), std::invalid_argument);
}

TEST(AssemblerTest, ProbGroupIdsAssigned)
{
    Assembler as;
    as.probCmp(CmpOp::FLT, 3, 4, 5);
    as.probJmpCarrier(6);
    as.probJmp(7, 3, "t");
    as.probCmp(CmpOp::FGT, 3, 4, 5);
    as.probJmp(0, 3, "t");
    as.label("t");
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p.insts[0].probId, 1);
    EXPECT_EQ(p.insts[1].probId, 1);
    EXPECT_EQ(p.insts[2].probId, 1);
    EXPECT_EQ(p.insts[3].probId, 2);
    EXPECT_EQ(p.insts[4].probId, 2);
    EXPECT_EQ(p.distinctProbIds(), 2u);
    EXPECT_EQ(p.staticProbBranchCount(), 2u);
}

TEST(AssemblerTest, UnterminatedProbGroupThrows)
{
    Assembler as;
    as.probCmp(CmpOp::FLT, 3, 4, 5);
    as.halt();
    EXPECT_THROW(as.finish(), std::logic_error);
}

TEST(AssemblerTest, NestedProbGroupThrows)
{
    Assembler as;
    as.probCmp(CmpOp::FLT, 3, 4, 5);
    EXPECT_THROW(as.probCmp(CmpOp::FLT, 3, 4, 5), std::logic_error);
}

TEST(ProgramValidate, BranchTargetOutOfRange)
{
    Program p;
    Instruction j;
    j.op = Opcode::JMP;
    j.imm = 99;
    p.insts.push_back(j);
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramValidate, ProbCmpWithoutJmp)
{
    Program p;
    Instruction c;
    c.op = Opcode::PROB_CMP;
    c.probId = 1;
    p.insts.push_back(c);
    Instruction h;
    h.op = Opcode::HALT;
    p.insts.push_back(h);
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(ProgramTest, ListingContainsLabelsAndDisasm)
{
    Assembler as;
    as.label("start");
    as.addi(3, 3, 1);
    as.jmp("start");
    as.halt();
    Program p = as.finish();
    std::string listing = p.listing();
    EXPECT_NE(listing.find("start:"), std::string::npos);
    EXPECT_NE(listing.find("addi r3, r3, 1"), std::string::npos);
}

// --- encode / decode round trips ---

std::vector<Instruction>
sampleInstructions()
{
    Assembler as;
    as.ldi(3, 42);
    as.ldi(4, int64_t(0x123456789abcdef0ull));  // wide immediate
    as.add(5, 3, 4);
    as.fmul(6, 5, 3);
    as.cmp(CmpOp::FLT, 7, 6, 5);
    as.sel(8, 7, 3, 4);
    as.ld(9, 3, -16);
    as.st(3, 9, 24);
    as.probCmp(CmpOp::FGE, 7, 6, 5);
    as.probJmpCarrier(10);
    as.probJmp(11, 7, "out");
    as.label("out");
    as.jnz(7, "out");
    as.cfdJnz(7, "out");
    as.halt();
    return as.finish().insts;
}

class EncodingRoundTrip
    : public ::testing::TestWithParam<EncodeMode> {};

TEST_P(EncodingRoundTrip, AllInstructionsSurvive)
{
    auto insts = sampleInstructions();
    auto words = encodeAll(insts, GetParam());
    auto back = decodeAll(words, GetParam(), /*pbsAware*/ true);
    ASSERT_EQ(back.size(), insts.size());
    for (size_t i = 0; i < insts.size(); i++)
        EXPECT_EQ(back[i], insts[i]) << "instruction " << i << ": "
                                     << disassemble(insts[i]);
}

INSTANTIATE_TEST_SUITE_P(BothModes, EncodingRoundTrip,
                         ::testing::Values(EncodeMode::NewOpcodes,
                                           EncodeMode::LegacyBits),
                         [](const auto &info) {
                             return info.param == EncodeMode::NewOpcodes
                                 ? "NewOpcodes" : "LegacyBits";
                         });

TEST(EncodingLegacy, PbsUnawareMachineSeesRegularBranches)
{
    // Backward compatibility (paper Sec. V-A2): a legacy machine
    // decoding the LegacyBits stream sees CMP / JNZ / NOP.
    Assembler as;
    as.probCmp(CmpOp::FGE, 7, 6, 5);
    as.probJmpCarrier(10);
    as.probJmp(11, 7, "out");
    as.label("out");
    as.halt();
    auto insts = as.finish().insts;
    auto words = encodeAll(insts, EncodeMode::LegacyBits);
    auto legacy = decodeAll(words, EncodeMode::LegacyBits, false);
    ASSERT_EQ(legacy.size(), 4u);
    EXPECT_EQ(legacy[0].op, Opcode::CMP);
    EXPECT_EQ(legacy[0].rd, 7);
    EXPECT_EQ(legacy[0].rs1, 6);
    EXPECT_EQ(legacy[1].op, Opcode::NOP);  // carrier neutralized
    EXPECT_EQ(legacy[2].op, Opcode::JNZ);
    EXPECT_EQ(legacy[2].rs1, 7);
    EXPECT_EQ(legacy[2].imm, 3);
}

TEST(EncodingNewOpcodes, PbsUnawareDecodeFallsBack)
{
    Assembler as;
    as.probCmp(CmpOp::FGE, 7, 6, 5);
    as.probJmp(11, 7, "out");
    as.label("out");
    as.halt();
    auto insts = as.finish().insts;
    auto words = encodeAll(insts, EncodeMode::NewOpcodes);
    auto legacy = decodeAll(words, EncodeMode::NewOpcodes, false);
    EXPECT_EQ(legacy[0].op, Opcode::CMP);
    EXPECT_EQ(legacy[1].op, Opcode::JNZ);
    EXPECT_EQ(legacy[1].imm, 2);
}

TEST(EncodingTest, ImmediateTooLargeThrows)
{
    Instruction j;
    j.op = Opcode::JMP;
    j.imm = int64_t(1) << 40;
    EXPECT_THROW(encode(j), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Sorted-vector label and data tables (formerly std::map).
// ---------------------------------------------------------------------

TEST(ProgramTables, LabelsStaySortedAndBinarySearchable)
{
    Assembler as;
    // Deliberately unsorted definition order.
    for (const char *name : {"zeta", "alpha", "mid", "beta", "omega"}) {
        as.label(name);
        as.nop();
    }
    as.halt();
    Program p = as.finish();

    ASSERT_EQ(p.labels.size(), 5u);
    for (size_t i = 1; i < p.labels.size(); i++)
        EXPECT_LT(p.labels[i - 1].first, p.labels[i].first);

    ASSERT_NE(p.findLabel("alpha"), nullptr);
    EXPECT_EQ(*p.findLabel("alpha"), 1u);
    ASSERT_NE(p.findLabel("omega"), nullptr);
    EXPECT_EQ(*p.findLabel("omega"), 4u);
    EXPECT_EQ(p.findLabel("missing"), nullptr);
}

TEST(ProgramTables, DuplicateLabelDiagnosticNamesTheLabel)
{
    Assembler as;
    as.label("again");
    as.nop();
    try {
        as.label("again");
        FAIL() << "duplicate label accepted";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string(e.what()).find("again"),
                  std::string::npos) << e.what();
    }
}

TEST(ProgramTables, DataInitSortedWithLastWriteWins)
{
    Assembler as;
    as.data64(0x300, 1);
    as.data64(0x100, 2);
    as.data64(0x200, 3);
    as.data64(0x100, 42);  // overwrite
    as.halt();
    Program p = as.finish();

    ASSERT_EQ(p.dataInit.size(), 3u);
    EXPECT_EQ(p.dataInit[0].first, 0x100u);
    EXPECT_EQ(p.dataInit[1].first, 0x200u);
    EXPECT_EQ(p.dataInit[2].first, 0x300u);
    EXPECT_EQ(p.dataInit[0].second[0], 42);  // last write won
}

TEST(ProgramTables, OutOfRangeTargetDiagnosticShowsInstruction)
{
    Instruction j;
    j.op = Opcode::JMP;
    j.imm = 12345;
    Program p;
    p.insts.push_back(j);
    try {
        p.validate();
        FAIL() << "out-of-range target accepted";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("target out of range"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("12345"), std::string::npos) << msg;
    }
}

}  // namespace
