/**
 * @file
 * The work-stealing scheduler (src/util/task_pool): exactly-once
 * execution across edge shapes and nesting, fuzzed fork/join trees,
 * exception propagation out of a stolen task, clean repeated
 * shutdown, and the byte-identity contract — batch and sweep
 * artifacts identical across --jobs {1,2,8}, both policies (stealing
 * vs the pre-scheduler static reference), and seeded steal-order
 * jitter. Built with TSan in CI (the deque is fence-free seq_cst so
 * the tool can actually verify it).
 */

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "driver/options.hh"
#include "driver/runner.hh"
#include "exp/artifact.hh"
#include "exp/engine.hh"
#include "exp/spec.hh"
#include "util/task_pool.hh"

namespace {

using namespace pbs;

/** Every test leaves the singleton back in the serial default. */
class SchedulerTest : public ::testing::Test
{
  protected:
    void SetUp() override { reset(); }
    void TearDown() override { reset(); }

    static void reset()
    {
        pool::TaskPool &p = pool::TaskPool::instance();
        p.setStealJitter(0, 0);
        p.setPolicy(pool::Policy::Steal);
        p.configure(1);
        p.resetCounters();
    }

    /** Spin until @p flag is set (bounded; fails the test on timeout). */
    static bool await(const std::atomic<bool> &flag)
    {
        for (int i = 0; i < 100000; i++) {
            if (flag.load())
                return true;
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        ADD_FAILURE() << "timed out awaiting flag";
        return false;
    }
};

// --- exactly-once execution ------------------------------------------

TEST_F(SchedulerTest, RunsEveryIndexExactlyOnceAcrossShapes)
{
    pool::TaskPool &p = pool::TaskPool::instance();
    for (unsigned jobs : {1u, 2u, 8u}) {
        p.configure(jobs);
        for (size_t n : {size_t(0), size_t(1), size_t(2), size_t(7),
                         size_t(4096)}) {
            std::vector<std::atomic<int>> hits(n);
            p.parallelFor(
                n, [&](size_t i) { hits[i].fetch_add(1); }, "test");
            for (size_t i = 0; i < n; i++)
                EXPECT_EQ(hits[i].load(), 1)
                    << "jobs=" << jobs << " n=" << n << " i=" << i;
        }
    }
}

TEST_F(SchedulerTest, NestedParallelForRunsEveryLeafOnce)
{
    pool::TaskPool &p = pool::TaskPool::instance();
    p.configure(8);
    constexpr size_t kOuter = 9, kInner = 17;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    p.parallelFor(
        kOuter,
        [&](size_t o) {
            p.parallelFor(
                kInner,
                [&](size_t i) { hits[o * kInner + i].fetch_add(1); },
                "inner");
        },
        "outer");
    for (size_t i = 0; i < hits.size(); i++)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

/**
 * Fuzz: random fork/join trees (depth up to 3, random widths drawn
 * from a per-seed xorshift stream), with and without steal jitter.
 * The leaf population is computed by a serial model first; the pool
 * must hit each leaf exactly once.
 */
TEST_F(SchedulerTest, FuzzedForkJoinTreesRunEachLeafOnce)
{
    pool::TaskPool &p = pool::TaskPool::instance();
    p.configure(8);

    auto next = [](uint64_t &s) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    };

    for (uint64_t seed = 1; seed <= 6; seed++) {
        p.setStealJitter(seed, seed % 2 ? 50 : 0);

        // widths[d] at depth d; leaves live at depth 2.
        uint64_t s = seed * 0x9e3779b97f4a7c15ull + 1;
        const size_t w0 = 1 + next(s) % 6;
        const size_t w1 = 1 + next(s) % 5;
        const size_t w2 = 1 + next(s) % 7;

        std::vector<std::atomic<int>> hits(w0 * w1 * w2);
        p.parallelFor(
            w0,
            [&](size_t a) {
                p.parallelFor(
                    w1,
                    [&](size_t b) {
                        p.parallelFor(
                            w2,
                            [&](size_t c) {
                                hits[(a * w1 + b) * w2 + c]
                                    .fetch_add(1);
                            },
                            "d2");
                    },
                    "d1");
            },
            "d0");
        for (size_t i = 0; i < hits.size(); i++)
            EXPECT_EQ(hits[i].load(), 1)
                << "seed=" << seed << " leaf=" << i;
        p.setStealJitter(0, 0);
    }
}

// --- exception propagation -------------------------------------------

TEST_F(SchedulerTest, ExceptionFromStolenTaskPropagatesToCaller)
{
    pool::TaskPool &p = pool::TaskPool::instance();
    p.configure(2);  // caller + exactly one worker
    p.resetCounters();

    // The caller blocks in leaf 0, so leaf 1 can only run on the
    // worker — a guaranteed steal — and its exception must surface
    // from parallelFor on the calling thread.
    std::atomic<bool> started0{false}, started1{false};
    std::thread::id tid0, tid1;
    EXPECT_THROW(
        p.parallelFor(
            2,
            [&](size_t i) {
                if (i == 0) {
                    tid0 = std::this_thread::get_id();
                    started0.store(true);
                    await(started1);
                } else {
                    await(started0);
                    tid1 = std::this_thread::get_id();
                    started1.store(true);
                    throw std::runtime_error("boom");
                }
            },
            "test"),
        std::runtime_error);

    EXPECT_NE(tid0, tid1) << "leaf 1 must have been stolen";
    EXPECT_GT(p.counters().steals, 0u);
}

TEST_F(SchedulerTest, ExceptionPropagatesInSerialAndStaticModes)
{
    pool::TaskPool &p = pool::TaskPool::instance();

    p.configure(1);
    EXPECT_THROW(p.parallelFor(
                     3,
                     [](size_t i) {
                         if (i == 2)
                             throw std::invalid_argument("x");
                     },
                     "test"),
                 std::invalid_argument);

    p.setPolicy(pool::Policy::Static);
    p.configure(4);
    EXPECT_THROW(p.parallelFor(
                     8,
                     [](size_t i) {
                         if (i == 5)
                             throw std::invalid_argument("x");
                     },
                     "test"),
                 std::invalid_argument);
}

// --- shutdown / reconfigure ------------------------------------------

TEST_F(SchedulerTest, RepeatedReconfigureAndShutdownStaysClean)
{
    pool::TaskPool &p = pool::TaskPool::instance();
    for (int round = 0; round < 10; round++) {
        p.configure(1 + round % 5);
        std::atomic<int> sum{0};
        p.parallelFor(
            17, [&](size_t) { sum.fetch_add(1); }, "test");
        EXPECT_EQ(sum.load(), 17);
        p.shutdown();
    }
    // Shutdown leaves the pool usable: configure respawns workers.
    p.configure(4);
    std::atomic<int> sum{0};
    p.parallelFor(
        100, [&](size_t) { sum.fetch_add(1); }, "test");
    EXPECT_EQ(sum.load(), 100);
}

// --- byte-identity of artifacts --------------------------------------

/**
 * A sampled multi-seed batch: seeds fan out on the pool and each
 * seed's intervals fan out beneath them (the nested case the old
 * static pool could not schedule).
 */
driver::DriverOptions
sampledBatchOpts()
{
    auto parsed = driver::parseArgs(
        {"--workload", "pi", "--mode", "sampled", "--div", "20",
         "--seeds", "2", "--sample-interval", "40000",
         "--sample-warmup", "10000", "--sample-measure", "5000",
         "--format", "json"});
    EXPECT_TRUE(parsed.ok) << parsed.error;
    return parsed.opts;
}

TEST_F(SchedulerTest, BatchArtifactByteIdenticalAcrossJobsAndPolicies)
{
    driver::DriverOptions opts = sampledBatchOpts();
    pool::TaskPool &p = pool::TaskPool::instance();

    auto render = [&](pool::Policy policy, unsigned jobs) {
        p.setPolicy(policy);
        opts.jobs = jobs;  // runBatch() configures the pool from this
        return exp::batchJson(opts, driver::runBatch(opts));
    };

    const std::string reference = render(pool::Policy::Static, 1);
    for (unsigned jobs : {1u, 2u, 8u}) {
        EXPECT_EQ(render(pool::Policy::Static, jobs), reference)
            << "static jobs=" << jobs;
        EXPECT_EQ(render(pool::Policy::Steal, jobs), reference)
            << "steal jobs=" << jobs;
    }
}

TEST_F(SchedulerTest, SweepArtifactByteIdenticalUnderStealJitter)
{
    // A sampled predictor x pbs sweep: point tasks outside, interval
    // tasks nested inside, no cache (every run simulates).
    auto parsed = exp::parseSpecText(
        "workload = pi\n"
        "predictor = tournament, tage-sc-l\n"
        "pbs = off, on\n"
        "mode = sampled\n"
        "sample-grid = 40000/10000/5000\n"
        "div = 20\n");
    ASSERT_TRUE(parsed.ok) << parsed.error;
    auto grid = exp::expandSpec(parsed.spec);
    ASSERT_TRUE(grid.ok) << grid.error;

    pool::TaskPool &p = pool::TaskPool::instance();
    auto render = [&](pool::Policy policy, unsigned jobs,
                      uint64_t jitterSeed) {
        p.setPolicy(policy);
        p.setStealJitter(jitterSeed, jitterSeed ? 100 : 0);
        exp::EngineConfig cfg;
        cfg.jobs = jobs;
        exp::Engine engine(cfg);
        engine.runAll(grid.points);
        std::string doc = exp::sweepJson(grid.points, engine, "") +
                          exp::sweepCsv(grid.points, engine);
        p.setStealJitter(0, 0);
        return doc;
    };

    const std::string reference =
        render(pool::Policy::Steal, 1, 0);
    EXPECT_EQ(render(pool::Policy::Static, 8, 0), reference)
        << "old static pool must reproduce the stealing reference";
    EXPECT_EQ(render(pool::Policy::Steal, 2, 0), reference);
    EXPECT_EQ(render(pool::Policy::Steal, 8, 0), reference);
    // Seeded steal-order perturbation must not change a byte.
    EXPECT_EQ(render(pool::Policy::Steal, 8, 7), reference);
    EXPECT_EQ(render(pool::Policy::Steal, 8, 1234567), reference);
}

}  // namespace
