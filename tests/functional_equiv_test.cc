/**
 * @file
 * Functional-mode correctness: the sampling subsystem's
 * FunctionalEngine must leave registers, memory, the PC and the
 * program outputs bit-identical to a detailed (timing) run with PBS
 * disabled, on every registered workload across multiple seeds — under
 * both the superblock dispatcher and the reference opcode switch — and
 * both must reproduce the native reference outputs exactly (the RNG
 * ISA twins guarantee bit-equality end to end). Also covers the
 * PBS_FUNC_DISPATCH escape hatch that forces the reference dispatch.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "cpu/core.hh"
#include "sampling/functional.hh"
#include "workloads/common.hh"

namespace {

using namespace pbs;

class FunctionalEquiv : public ::testing::TestWithParam<const char *> {};

TEST_P(FunctionalEquiv, MatchesDetailedAndNative)
{
    const auto &b = workloads::benchmarkByName(GetParam());
    for (uint64_t seed : {11u, 47u, 20260u}) {
        workloads::WorkloadParams p;
        p.seed = seed;
        p.scale = std::max<uint64_t>(1, b.defaultScale / 100);
        const std::string base =
            std::string(GetParam()) + " seed " + std::to_string(seed);

        cpu::CoreConfig detCfg;  // timing, PBS off
        detCfg.predictor = "tage-sc-l";
        cpu::Core detailed(b.build(p, workloads::Variant::Marked),
                           detCfg);
        detailed.run();
        const auto native = b.nativeOutput(p);
        const auto detOut = b.simOutput(detailed.memory());

        for (auto fd : {sampling::FuncDispatch::Superblock,
                        sampling::FuncDispatch::Switch}) {
            const std::string what =
                base + " [" + sampling::funcDispatchName(fd) + "]";
            sampling::FunctionalEngine functional(
                b.build(p, workloads::Variant::Marked), 0, fd);
            functional.run();

            // Architectural end state, register by register.
            for (unsigned r = 0; r < isa::kNumRegs; r++)
                EXPECT_EQ(detailed.reg(r), functional.reg(r))
                    << what << " r" << r;
            EXPECT_EQ(detailed.pc(), functional.pc()) << what;
            EXPECT_TRUE(functional.halted()) << what;

            // Memory, byte for byte (zero pages treated as absent).
            EXPECT_TRUE(detailed.memory().sameContents(
                functional.memory())) << what;

            // Instruction-stream statistics the engines share.
            const auto &ds = detailed.stats();
            const auto &fs = functional.stats();
            EXPECT_EQ(ds.instructions, fs.instructions) << what;
            EXPECT_EQ(ds.branches, fs.branches) << what;
            EXPECT_EQ(ds.probBranches, fs.probBranches) << what;
            EXPECT_EQ(fs.cycles, 0u) << what;       // no timing model
            EXPECT_EQ(fs.mispredicts, 0u) << what;  // no predictor

            // Outputs: functional == detailed bit for bit, and both
            // match the native reference (same tolerance as the golden
            // tests).
            const auto funOut = b.simOutput(functional.memory());
            EXPECT_EQ(detOut, funOut) << what;
            ASSERT_EQ(funOut.size(), native.size()) << what;
            for (size_t i = 0; i < native.size(); i++)
                EXPECT_DOUBLE_EQ(funOut[i], native[i])
                    << what << " output[" << i << "]";
        }
    }
}

// The PBS_FUNC_DISPATCH environment knob selects the construction-time
// default: "switch" is the escape hatch back to the reference dispatch,
// "superblock-portable" forces the function-pointer backend, anything
// else (including unset) means the full superblock dispatcher.
TEST(FunctionalDispatchEnv, EscapeHatchSelectsDispatch)
{
    struct Case
    {
        const char *value;  // nullptr = unset
        sampling::FuncDispatch expect;
    };
    const Case cases[] = {
        {"switch", sampling::FuncDispatch::Switch},
        {"superblock-portable", sampling::FuncDispatch::SuperblockPortable},
        {"superblock", sampling::FuncDispatch::Superblock},
        {nullptr, sampling::FuncDispatch::Superblock},
    };
    const auto &b = workloads::benchmarkByName("pi");
    workloads::WorkloadParams p;
    p.scale = std::max<uint64_t>(1, b.defaultScale / 1000);
    for (const Case &c : cases) {
        if (c.value)
            setenv("PBS_FUNC_DISPATCH", c.value, 1);
        else
            unsetenv("PBS_FUNC_DISPATCH");
        EXPECT_EQ(sampling::defaultFuncDispatch(), c.expect)
            << (c.value ? c.value : "(unset)");

        // A default-constructed engine picks the knob up; the hatch
        // disables superblock formation entirely.
        sampling::FunctionalEngine eng(
            b.build(p, workloads::Variant::Marked));
        EXPECT_EQ(eng.dispatch(), c.expect)
            << (c.value ? c.value : "(unset)");
        EXPECT_EQ(eng.superblocks() == nullptr,
                  c.expect == sampling::FuncDispatch::Switch)
            << (c.value ? c.value : "(unset)");
    }
    unsetenv("PBS_FUNC_DISPATCH");
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, FunctionalEquiv,
    ::testing::Values("dop", "greeks", "swaptions", "genetic", "photon",
                      "mc-integ", "pi", "bandit"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

}  // namespace
