/**
 * @file
 * Allocation-regression guard: after warm-up, the simulator's hot loop
 * must perform ZERO heap allocations. A counting `operator new` hook in
 * this TU observes every allocation in the process; the tests step a
 * core past its warm-up phase, snapshot the counter, run a large
 * steady-state window, and assert the counter did not move.
 *
 * This is the tripwire for reintroducing per-instruction containers
 * (the seed used unordered_maps and a deque on the per-instruction
 * path). If any std::map/unordered_map/deque/vector growth sneaks back
 * into Core::stepOne, PbsEngine, the predictors, or the memory model's
 * steady state, these tests fail.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "cpu/core.hh"
#include "workloads/common.hh"

// ---------------------------------------------------------------------
// Counting operator new/delete for the whole test binary.
// ---------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocs{0};
std::atomic<uint64_t> g_frees{0};
}  // namespace

void *
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    if (p) {
        g_frees.fetch_add(1, std::memory_order_relaxed);
        std::free(p);
    }
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

namespace {

using namespace pbs;

uint64_t
allocCount()
{
    return g_allocs.load(std::memory_order_relaxed);
}

/** Build a core for @p workload, step it past warm-up, then measure
 *  allocations across a long steady-state window. */
uint64_t
steadyStateAllocs(const char *workload, const cpu::CoreConfig &cfg,
                  uint64_t warmup, uint64_t window)
{
    const auto &b = workloads::benchmarkByName(workload);
    workloads::WorkloadParams p;
    p.seed = 7;
    p.scale = b.defaultScale;  // plenty of iterations for the window

    cpu::Core core(b.build(p, workloads::Variant::Marked), cfg);
    EXPECT_EQ(core.step(warmup), warmup) << "workload too small";

    // No gtest assertions inside the measured window: only the
    // simulator runs between the two counter reads.
    const uint64_t before = allocCount();
    const uint64_t executed = core.step(window);
    const uint64_t delta = allocCount() - before;
    EXPECT_EQ(executed, window) << "workload too small";
    return delta;
}

TEST(AllocGuard, HookIsLive)
{
    const uint64_t before = allocCount();
    auto *v = new std::vector<int>(100);
    delete v;
    EXPECT_GT(allocCount(), before);
}

TEST(AllocGuard, PiTageSteadyStateIsAllocationFree)
{
    cpu::CoreConfig cfg;
    cfg.predictor = "tage";
    EXPECT_EQ(steadyStateAllocs("pi", cfg, 50'000, 500'000), 0u);
}

TEST(AllocGuard, PiTageSclPbsSteadyStateIsAllocationFree)
{
    // PBS on exercises the engine's live-instance table, the Prob-BTB
    // and the in-flight queue on every probabilistic branch.
    cpu::CoreConfig cfg;
    cfg.predictor = "tage-sc-l";
    cfg.pbsEnabled = true;
    EXPECT_EQ(steadyStateAllocs("pi", cfg, 50'000, 500'000), 0u);
}

TEST(AllocGuard, BanditTimingSteadyStateIsAllocationFree)
{
    // bandit is load/store heavy: covers the store-queue ring, the
    // store index, the cache model, and sparse-memory steady state.
    cpu::CoreConfig cfg;
    cfg.predictor = "tournament";
    cfg.pbsEnabled = true;
    EXPECT_EQ(steadyStateAllocs("bandit", cfg, 100'000, 500'000), 0u);
}

TEST(AllocGuard, FunctionalSteadyStateIsAllocationFree)
{
    cpu::CoreConfig cfg;
    cfg.mode = cpu::SimMode::Functional;
    cfg.predictor = "tage";
    cfg.pbsEnabled = true;
    EXPECT_EQ(steadyStateAllocs("pi", cfg, 50'000, 500'000), 0u);
}

TEST(AllocGuard, LegacyPathSteadyStateIsAllocationFreeToo)
{
    // The reference path shares the flat hot-loop structures; only its
    // program representation differs. It must stay allocation-free as
    // well, or differential runs would diverge in perf character.
    cpu::CoreConfig cfg;
    cfg.predictor = "tage";
    cfg.pbsEnabled = true;
    cfg.execPath = cpu::ExecPath::LegacyProgram;
    EXPECT_EQ(steadyStateAllocs("pi", cfg, 50'000, 500'000), 0u);
}

}  // namespace
