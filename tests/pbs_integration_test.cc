/**
 * @file
 * End-to-end PBS tests on the real benchmarks: steering coverage,
 * misprediction elimination, output accuracy (paper Sec. VII-D),
 * deterministic replay (Sec. III-B), and the consumption-order trace
 * that feeds the randomness evaluation (Table III).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cpu/core.hh"
#include "stats/stats.hh"
#include "workloads/common.hh"

namespace {

using namespace pbs;
using workloads::allBenchmarks;
using workloads::BenchmarkDesc;
using workloads::Variant;
using workloads::WorkloadParams;

cpu::CoreConfig
funcConfig(bool pbs, const std::string &pred = "tage-sc-l")
{
    cpu::CoreConfig cfg;
    cfg.mode = cpu::SimMode::Functional;
    cfg.predictor = pred;
    cfg.pbsEnabled = pbs;
    cfg.maxInstructions = 400'000'000ull;
    return cfg;
}

WorkloadParams
smallParams(const BenchmarkDesc &b, uint64_t seed = 11)
{
    WorkloadParams p;
    p.seed = seed;
    p.scale = b.name == "genetic" ? 40 : b.defaultScale / 5;
    return p;
}

class PbsBenchmarkTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PbsBenchmarkTest, SteersMostProbBranches)
{
    const BenchmarkDesc &b = workloads::benchmarkByName(GetParam());
    WorkloadParams p = smallParams(b);
    cpu::Core core(b.build(p, Variant::Marked), funcConfig(true));
    core.run();
    ASSERT_TRUE(core.halted());

    const auto &s = core.stats();
    ASSERT_GT(s.probBranches, 0u);
    double steered_frac =
        double(s.steeredBranches) / double(s.probBranches);
    EXPECT_GT(steered_frac, 0.5)
        << b.name << ": steered " << s.steeredBranches << " of "
        << s.probBranches;
}

TEST_P(PbsBenchmarkTest, EliminatesMostProbMispredictions)
{
    const BenchmarkDesc &b = workloads::benchmarkByName(GetParam());
    WorkloadParams p = smallParams(b);

    cpu::Core off(b.build(p, Variant::Marked), funcConfig(false));
    off.run();
    cpu::Core on(b.build(p, Variant::Marked), funcConfig(true));
    on.run();

    ASSERT_GT(off.stats().probMispredicts, 0u) << b.name;
    // PBS-steered branches never mispredict; only bootstrap instances
    // can. Expect a large reduction.
    EXPECT_LT(on.stats().probMispredicts,
              off.stats().probMispredicts / 2)
        << b.name;
    // Regular-branch behavior is mostly unharmed (small slack: PBS
    // perturbs global-history alignment). Two exceptions whose
    // data-dependent regular branches are coupled to the steered
    // probabilistic state: photon's escape tally correlates with the
    // steered escape branch, and genetic's fitness compares depend on
    // the (diverged) population trajectory. Their regular
    // mispredictions genuinely move — while total MPKI still drops
    // sharply (checked below).
    bool coupled = b.name == "photon" || b.name == "genetic";
    uint64_t slack = coupled
        ? off.stats().regularMispredicts * 2
        : off.stats().regularMispredicts / 5 + 16;
    EXPECT_LE(on.stats().regularMispredicts,
              off.stats().regularMispredicts + slack)
        << b.name;
    EXPECT_LT(on.stats().mpki(), off.stats().mpki()) << b.name;
}

TEST_P(PbsBenchmarkTest, DeterministicReplay)
{
    const BenchmarkDesc &b = workloads::benchmarkByName(GetParam());
    WorkloadParams p = smallParams(b);
    auto run = [&] {
        cpu::Core core(b.build(p, Variant::Marked), funcConfig(true));
        core.run();
        auto out = b.simOutput(core.memory());
        out.push_back(double(core.stats().steeredBranches));
        out.push_back(double(core.stats().mispredicts));
        return out;
    };
    EXPECT_EQ(run(), run()) << b.name;
}

TEST_P(PbsBenchmarkTest, OutputAccuracyWithinBounds)
{
    const BenchmarkDesc &b = workloads::benchmarkByName(GetParam());
    WorkloadParams p = smallParams(b);
    cpu::Core core(b.build(p, Variant::Marked), funcConfig(true));
    core.run();
    std::vector<double> sim = b.simOutput(core.memory());
    std::vector<double> ref = b.nativeOutput(p);
    ASSERT_EQ(sim.size(), ref.size());

    if (b.name == "photon") {
        // Paper: small RMS deviation on the output image (<= ~4%,
        // allow slack at our reduced scale).
        EXPECT_LT(stats::normalizedRmsError(sim, ref), 0.10);
        return;
    }
    if (b.name == "genetic") {
        // Success flag stays boolean; best fitness stays in range.
        EXPECT_TRUE(sim[0] == 0.0 || sim[0] == 1.0);
        EXPECT_GE(sim[2], 0.0);
        EXPECT_LE(sim[2], 16.0);
        return;
    }
    if (b.name == "bandit") {
        // The learning trajectory is chaotic: a single shifted explore
        // decision desynchronizes the paths. Reward and regret agree
        // in distribution; at test scale allow a wider band (the
        // full-scale accuracy bench reports the converged numbers).
        for (size_t i = 0; i < sim.size(); i++)
            EXPECT_LT(stats::relativeError(sim[i], ref[i]), 0.15)
                << b.name << " output " << i;
        return;
    }
    if (b.name == "swaptions") {
        // The inner-loop context clears re-bootstrap every trial, so a
        // few values per trial are duplicated/dropped — decorrelating
        // part of the path noise. The deviation shrinks as 1/sqrt(N).
        for (size_t i = 0; i < sim.size(); i++)
            EXPECT_LT(stats::relativeError(sim[i], ref[i]), 0.08)
                << b.name << " output " << i;
        return;
    }
    // Monte-Carlo accumulators: error bounded by the (few) duplicated
    // bootstrap values over N iterations.
    for (size_t i = 0; i < sim.size(); i++) {
        EXPECT_LT(stats::relativeError(sim[i], ref[i]), 0.02)
            << b.name << " output " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PbsBenchmarkTest,
    ::testing::Values("dop", "greeks", "swaptions", "genetic", "photon",
                      "mc-integ", "pi", "bandit"),
    [](const auto &info) {
        std::string name = info.param;
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(PbsTrace, IdentityWithoutPbs)
{
    const BenchmarkDesc &b = workloads::benchmarkByName("pi");
    WorkloadParams p = smallParams(b);
    auto cfg = funcConfig(false);
    cfg.traceProbBranches = true;
    cpu::Core core(b.build(p, Variant::Marked), cfg);
    core.run();
    ASSERT_FALSE(core.probTrace().empty());
    for (const auto &e : core.probTrace()) {
        EXPECT_EQ(e.consumedSeq, e.selfSeq);
        EXPECT_FALSE(e.steered);
    }
}

TEST(PbsTrace, ConsumptionMappingIsSaneUnderPbs)
{
    const BenchmarkDesc &b = workloads::benchmarkByName("pi");
    WorkloadParams p = smallParams(b);
    auto cfg = funcConfig(true);
    cfg.traceProbBranches = true;
    cpu::Core core(b.build(p, Variant::Marked), cfg);
    core.run();
    const auto &trace = core.probTrace();
    ASSERT_FALSE(trace.empty());

    uint64_t steered = 0;
    std::map<uint64_t, unsigned> consumption_count;
    for (const auto &e : trace) {
        if (e.steered) {
            steered++;
            EXPECT_LT(e.consumedSeq, e.selfSeq);
        } else {
            EXPECT_EQ(e.consumedSeq, e.selfSeq);
        }
        consumption_count[e.consumedSeq]++;
    }
    EXPECT_GT(steered, trace.size() / 2);

    // Bootstrap values are consumed twice (paper Sec. IV); everything
    // else at most once... and the count of duplicates equals the
    // bootstrap depth.
    unsigned duplicates = 0;
    for (const auto &[seq, count] : consumption_count) {
        EXPECT_LE(count, 2u);
        if (count == 2)
            duplicates++;
    }
    EXPECT_GT(duplicates, 0u);
    EXPECT_LE(duplicates, 16u);  // small bootstrap
}

TEST(PbsTiming, ImprovesIpcAndMpkiOnTimingModel)
{
    // Timing-mode spot check on two benchmarks (kept small for speed).
    for (const char *name : {"pi", "greeks"}) {
        const BenchmarkDesc &b = workloads::benchmarkByName(name);
        WorkloadParams p;
        p.seed = 3;
        p.scale = b.defaultScale / 10;

        cpu::CoreConfig off = cpu::CoreConfig::fourWide();
        off.predictor = "tage-sc-l";
        cpu::CoreConfig on = off;
        on.pbsEnabled = true;

        cpu::Core coreOff(b.build(p, Variant::Marked), off);
        coreOff.run();
        cpu::Core coreOn(b.build(p, Variant::Marked), on);
        coreOn.run();

        EXPECT_LT(coreOn.stats().mpki(), coreOff.stats().mpki())
            << name;
        EXPECT_GT(coreOn.stats().ipc(), coreOff.stats().ipc()) << name;
    }
}

TEST(PbsContextSupport, SwaptionsUsesFunctionContext)
{
    // Swaptions reaches its branches through a call inside the loop;
    // the engine must still steer (Function-PC context, Sec. V-C1).
    const BenchmarkDesc &b = workloads::benchmarkByName("swaptions");
    WorkloadParams p = smallParams(b);
    cpu::Core core(b.build(p, Variant::Marked), funcConfig(true));
    core.run();
    EXPECT_GT(core.pbs().stats().contextClears, 0u)
        << "inner loop termination should clear contexts";
    EXPECT_GT(core.stats().steeredBranches,
              core.stats().probBranches / 2);
}

TEST(PbsConfigKnobs, DisablingContextStillWorksOnSimpleLoops)
{
    const BenchmarkDesc &b = workloads::benchmarkByName("pi");
    WorkloadParams p = smallParams(b);
    auto cfg = funcConfig(true);
    cfg.pbs.contextSupport = false;
    cpu::Core core(b.build(p, Variant::Marked), cfg);
    core.run();
    EXPECT_GT(core.stats().steeredBranches,
              core.stats().probBranches * 3 / 4);
}

TEST(PbsConfigKnobs, SingleEntryBtbOnlySupportsOneBranch)
{
    const BenchmarkDesc &b = workloads::benchmarkByName("dop");
    WorkloadParams p = smallParams(b);
    auto cfg = funcConfig(true);
    cfg.pbs.numBranches = 1;
    cpu::Core core(b.build(p, Variant::Marked), cfg);
    core.run();
    // Roughly half the dynamic prob branches can steer (one of the two
    // static branches owns the single entry).
    double frac = double(core.stats().steeredBranches) /
                  double(core.stats().probBranches);
    EXPECT_GT(frac, 0.3);
    EXPECT_LT(frac, 0.7);
    EXPECT_GT(core.pbs().stats().fetchUnsupported, 0u);
}

}  // namespace
