/**
 * @file
 * Differential equivalence: the predecoded DecodedImage execution path
 * must be bit-identical to the legacy direct-Program interpretation on
 * every registered workload — cycle counts, misprediction counts,
 * prob-branch traces, architectural registers, and final memory state,
 * across multiple seeds, simulation modes, and PBS settings.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "isa/decoded_image.hh"
#include "workloads/common.hh"

namespace {

using namespace pbs;

struct RunOutcome
{
    cpu::CoreStats stats;
    core::PbsStats pbs;
    std::vector<cpu::ProbTraceEntry> trace;
    std::array<uint64_t, isa::kNumRegs> regs;
    std::vector<double> outputs;
    uint64_t pc = 0;
};

RunOutcome
outcomeOf(const workloads::BenchmarkDesc &b, const cpu::Core &core)
{
    RunOutcome out;
    out.stats = core.stats();
    out.pbs = core.pbs().stats();
    out.trace = core.probTrace();
    for (unsigned r = 0; r < isa::kNumRegs; r++)
        out.regs[r] = core.reg(r);
    out.outputs = b.simOutput(core.memory());
    out.pc = core.pc();
    return out;
}

void
expectIdentical(const RunOutcome &legacy, const RunOutcome &decoded,
                const mem::SparseMemory &legacyMem,
                const mem::SparseMemory &decodedMem,
                const std::string &what)
{
    // Cycle-exact timing and event counts.
    EXPECT_EQ(legacy.stats.cycles, decoded.stats.cycles) << what;
    EXPECT_EQ(legacy.stats.instructions, decoded.stats.instructions)
        << what;
    EXPECT_EQ(legacy.stats.branches, decoded.stats.branches) << what;
    EXPECT_EQ(legacy.stats.mispredicts, decoded.stats.mispredicts)
        << what;
    EXPECT_TRUE(legacy.stats == decoded.stats) << what;

    // PBS engine statistics (every counter).
    EXPECT_TRUE(legacy.pbs == decoded.pbs) << what;

    // The dynamic prob-branch trace, entry by entry.
    ASSERT_EQ(legacy.trace.size(), decoded.trace.size()) << what;
    for (size_t i = 0; i < legacy.trace.size(); i++) {
        EXPECT_EQ(legacy.trace[i].probId, decoded.trace[i].probId)
            << what << " entry " << i;
        EXPECT_EQ(legacy.trace[i].selfSeq, decoded.trace[i].selfSeq)
            << what << " entry " << i;
        EXPECT_EQ(legacy.trace[i].consumedSeq,
                  decoded.trace[i].consumedSeq) << what << " entry " << i;
        EXPECT_EQ(legacy.trace[i].taken, decoded.trace[i].taken)
            << what << " entry " << i;
        EXPECT_EQ(legacy.trace[i].steered, decoded.trace[i].steered)
            << what << " entry " << i;
    }

    // Architectural end state.
    EXPECT_EQ(legacy.regs, decoded.regs) << what;
    EXPECT_EQ(legacy.pc, decoded.pc) << what;
    EXPECT_EQ(legacy.outputs, decoded.outputs) << what;
    EXPECT_TRUE(legacyMem.sameContents(decodedMem)) << what;
}

class PredecodeEquiv : public ::testing::TestWithParam<const char *> {};

TEST_P(PredecodeEquiv, TimingWithPbsAndTrace)
{
    const auto &b = workloads::benchmarkByName(GetParam());
    for (uint64_t seed : {3u, 17u, 1009u}) {
        workloads::WorkloadParams p;
        p.seed = seed;
        p.scale = std::max<uint64_t>(1, b.defaultScale / 100);

        cpu::CoreConfig legacyCfg;
        legacyCfg.predictor = "tage-sc-l";
        legacyCfg.pbsEnabled = true;
        legacyCfg.traceProbBranches = true;
        legacyCfg.execPath = cpu::ExecPath::LegacyProgram;
        cpu::CoreConfig decodedCfg = legacyCfg;
        decodedCfg.execPath = cpu::ExecPath::Decoded;

        cpu::Core legacy(b.build(p, workloads::Variant::Marked),
                         legacyCfg);
        legacy.run();
        cpu::Core decoded(b.build(p, workloads::Variant::Marked),
                          decodedCfg);
        decoded.run();
        expectIdentical(outcomeOf(b, legacy), outcomeOf(b, decoded),
                        legacy.memory(), decoded.memory(),
                        std::string(GetParam()) + " seed " +
                            std::to_string(seed));
    }
}

TEST_P(PredecodeEquiv, FunctionalNoPbs)
{
    const auto &b = workloads::benchmarkByName(GetParam());
    for (uint64_t seed : {5u, 23u, 999u}) {
        workloads::WorkloadParams p;
        p.seed = seed;
        p.scale = std::max<uint64_t>(1, b.defaultScale / 100);

        cpu::CoreConfig legacyCfg;
        legacyCfg.mode = cpu::SimMode::Functional;
        legacyCfg.predictor = "tournament";
        legacyCfg.execPath = cpu::ExecPath::LegacyProgram;
        cpu::CoreConfig decodedCfg = legacyCfg;
        decodedCfg.execPath = cpu::ExecPath::Decoded;

        cpu::Core legacy(b.build(p, workloads::Variant::Marked),
                         legacyCfg);
        legacy.run();
        cpu::Core decoded(b.build(p, workloads::Variant::Marked),
                          decodedCfg);
        decoded.run();
        expectIdentical(outcomeOf(b, legacy), outcomeOf(b, decoded),
                        legacy.memory(), decoded.memory(),
                        std::string(GetParam()) + " seed " +
                            std::to_string(seed));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, PredecodeEquiv,
    ::testing::Values("dop", "greeks", "swaptions", "genetic", "photon",
                      "mc-integ", "pi", "bandit"),
    [](const auto &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (c == '-')
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// Store-to-load forwarding window: the decoded path's store index must
// agree with the legacy exact ring scan, including hash-collision and
// window-expiry cases (many distinct addresses, > 64 queued stores).
// ---------------------------------------------------------------------

TEST(PredecodeEquivStoreQueue, CollisionAndExpiryStress)
{
    isa::Assembler a;
    constexpr unsigned kAddrs = 384;  // > index slots, forces collisions
    a.ldi(3, 0x20000);                // base
    a.ldi(4, 2000);                   // outer iterations
    a.ldi(7, 1);
    a.label("loop");
    // Walk a stride pattern: store to (i*56 % (kAddrs*8)), then load a
    // different offset, so loads hit both matching and missing keys.
    a.mul(5, 4, 7);
    a.addi(5, 5, 7919);
    a.slli(5, 5, 3);
    a.andi(5, 5, (kAddrs * 8) - 1);
    a.add(5, 5, 3);
    a.st(5, 4, 0);
    a.ld(6, 5, 0);
    a.addi(5, 5, 8);
    a.ld(6, 5, 0);
    a.addi(4, 4, -1);
    a.jnz(4, "loop");
    a.halt();
    isa::Program prog = a.finish();

    cpu::CoreConfig legacyCfg;
    legacyCfg.predictor = "tournament";
    legacyCfg.execPath = cpu::ExecPath::LegacyProgram;
    cpu::CoreConfig decodedCfg = legacyCfg;
    decodedCfg.execPath = cpu::ExecPath::Decoded;

    cpu::Core legacy(prog, legacyCfg);
    legacy.run();
    cpu::Core decoded(prog, decodedCfg);
    decoded.run();

    EXPECT_EQ(legacy.stats().cycles, decoded.stats().cycles);
    EXPECT_TRUE(legacy.stats() == decoded.stats());
    EXPECT_TRUE(legacy.memory().sameContents(decoded.memory()));
}

}  // namespace
